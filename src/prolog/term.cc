#include "prolog/term.hh"

#include <atomic>
#include <unordered_set>

#include "base/logging.hh"

namespace kcm
{

namespace
{
std::atomic<uint64_t> nextVarId{1};
} // namespace

TermRef
Term::makeVar(const std::string &name)
{
    auto t = TermRef(new Term());
    t->_kind = TermKind::Var;
    t->_varName = name;
    t->_varId = nextVarId.fetch_add(1);
    return t;
}

TermRef
Term::makeAtom(AtomId atom)
{
    auto t = TermRef(new Term());
    t->_kind = TermKind::Atom;
    t->_atom = atom;
    return t;
}

TermRef
Term::makeAtom(const std::string &text)
{
    return makeAtom(internAtom(text));
}

TermRef
Term::makeInt(int64_t value)
{
    auto t = TermRef(new Term());
    t->_kind = TermKind::Int;
    t->_int = value;
    return t;
}

TermRef
Term::makeFloat(double value)
{
    auto t = TermRef(new Term());
    t->_kind = TermKind::Float;
    t->_float = value;
    return t;
}

TermRef
Term::makeStruct(AtomId name, std::vector<TermRef> args)
{
    if (args.empty())
        return makeAtom(name);
    auto t = TermRef(new Term());
    t->_kind = TermKind::Struct;
    t->_atom = name;
    t->args_ = std::move(args);
    return t;
}

TermRef
Term::makeStruct(const std::string &name, std::vector<TermRef> args)
{
    return makeStruct(internAtom(name), std::move(args));
}

TermRef
Term::makeCons(TermRef head, TermRef tail)
{
    return makeStruct(AtomTable::instance().dot,
                      {std::move(head), std::move(tail)});
}

TermRef
Term::makeList(const std::vector<TermRef> &items, TermRef tail)
{
    TermRef list = tail ? tail : makeAtom(AtomTable::instance().nil);
    for (auto it = items.rbegin(); it != items.rend(); ++it)
        list = makeCons(*it, list);
    return list;
}

bool
Term::isCons() const
{
    return _kind == TermKind::Struct && _atom == AtomTable::instance().dot &&
           args_.size() == 2;
}

bool
Term::isNil() const
{
    return _kind == TermKind::Atom && _atom == AtomTable::instance().nil;
}

bool
Term::isList() const
{
    return isCons() || isNil();
}

AtomId
Term::atom() const
{
    if (_kind != TermKind::Atom)
        panic("Term::atom on non-atom");
    return _atom;
}

int64_t
Term::intValue() const
{
    if (_kind != TermKind::Int)
        panic("Term::intValue on non-int");
    return _int;
}

double
Term::floatValue() const
{
    if (_kind != TermKind::Float)
        panic("Term::floatValue on non-float");
    return _float;
}

AtomId
Term::functorName() const
{
    if (_kind != TermKind::Struct && _kind != TermKind::Atom)
        panic("Term::functorName on non-callable");
    return _atom;
}

uint32_t
Term::arity() const
{
    return static_cast<uint32_t>(args_.size());
}

const std::vector<TermRef> &
Term::args() const
{
    return args_;
}

const TermRef &
Term::arg(uint32_t i) const
{
    if (i >= args_.size())
        panic("Term::arg index ", i, " out of range");
    return args_[i];
}

Functor
Term::functor() const
{
    return Functor{functorName(), arity()};
}

const std::string &
Term::varName() const
{
    if (_kind != TermKind::Var)
        panic("Term::varName on non-var");
    return _varName;
}

uint64_t
Term::varId() const
{
    if (_kind != TermKind::Var)
        panic("Term::varId on non-var");
    return _varId;
}

bool
Term::equal(const TermRef &a, const TermRef &b)
{
    if (a.get() == b.get())
        return true;
    if (a->kind() != b->kind())
        return false;
    switch (a->kind()) {
      case TermKind::Var:
        return false; // distinct nodes: different variables
      case TermKind::Atom:
        return a->atom() == b->atom();
      case TermKind::Int:
        return a->intValue() == b->intValue();
      case TermKind::Float:
        return a->floatValue() == b->floatValue();
      case TermKind::Struct: {
        if (a->functorName() != b->functorName() ||
            a->arity() != b->arity()) {
            return false;
        }
        for (uint32_t i = 0; i < a->arity(); ++i) {
            if (!equal(a->arg(i), b->arg(i)))
                return false;
        }
        return true;
      }
    }
    return false;
}

namespace
{

void
collectVarsImpl(const TermRef &t, std::vector<TermRef> &out,
                std::unordered_set<const Term *> &seen)
{
    if (t->isVar()) {
        if (seen.insert(t.get()).second)
            out.push_back(t);
        return;
    }
    if (t->isStruct()) {
        for (const auto &arg : t->args())
            collectVarsImpl(arg, out, seen);
    }
}

} // namespace

void
collectVars(const TermRef &t, std::vector<TermRef> &out)
{
    std::unordered_set<const Term *> seen;
    collectVarsImpl(t, out, seen);
}

size_t
countVars(const TermRef &t)
{
    std::vector<TermRef> vars;
    collectVars(t, vars);
    return vars.size();
}

} // namespace kcm
