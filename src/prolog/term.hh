/**
 * @file
 * Source-level Prolog terms.
 *
 * This is the representation used by the reader and the compiler; the
 * simulated machine has its own tagged-word heap representation. Terms
 * are immutable trees shared via TermRef; variables are identity-based
 * nodes (two occurrences of the same source variable share one node).
 */

#ifndef KCM_PROLOG_TERM_HH
#define KCM_PROLOG_TERM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "prolog/atom_table.hh"

namespace kcm
{

class Term;
using TermRef = std::shared_ptr<Term>;

/** The kinds of source-level terms. */
enum class TermKind
{
    Var,
    Atom,
    Int,
    Float,
    Struct,
};

/**
 * An immutable Prolog term node.
 *
 * Lists are ordinary './2' structures terminated by the atom '[]',
 * exactly as they are in the machine representation.
 */
class Term
{
  public:
    /** Build a fresh, unbound variable node. @p name is for printing. */
    static TermRef makeVar(const std::string &name);
    static TermRef makeAtom(AtomId atom);
    static TermRef makeAtom(const std::string &text);
    static TermRef makeInt(int64_t value);
    static TermRef makeFloat(double value);
    static TermRef makeStruct(AtomId name, std::vector<TermRef> args);
    static TermRef makeStruct(const std::string &name,
                              std::vector<TermRef> args);
    /** Build './'(head, tail). */
    static TermRef makeCons(TermRef head, TermRef tail);
    /** Build a proper list of @p items (optionally ending in @p tail). */
    static TermRef makeList(const std::vector<TermRef> &items,
                            TermRef tail = nullptr);

    TermKind kind() const { return _kind; }
    bool isVar() const { return _kind == TermKind::Var; }
    bool isAtom() const { return _kind == TermKind::Atom; }
    bool isInt() const { return _kind == TermKind::Int; }
    bool isFloat() const { return _kind == TermKind::Float; }
    bool isStruct() const { return _kind == TermKind::Struct; }
    bool isNumber() const { return isInt() || isFloat(); }
    bool isAtomic() const { return isAtom() || isNumber(); }

    /** True for './2' structures and for '[]'. */
    bool isList() const;
    bool isCons() const;
    bool isNil() const;
    /** True if the term is an atom equal to @p id. */
    bool isAtomNamed(AtomId id) const { return isAtom() && _atom == id; }

    // Accessors; panic on kind mismatch.
    AtomId atom() const;
    int64_t intValue() const;
    double floatValue() const;
    AtomId functorName() const;
    uint32_t arity() const;
    const std::vector<TermRef> &args() const;
    const TermRef &arg(uint32_t i) const;

    /** Functor of an atom (arity 0) or structure. */
    Functor functor() const;

    /** Variable accessors. */
    const std::string &varName() const;
    uint64_t varId() const;

    /** Structural equality; variables compare by identity. */
    static bool equal(const TermRef &a, const TermRef &b);

  private:
    Term() = default;

    TermKind _kind = TermKind::Atom;
    AtomId _atom = 0;          // Atom / Struct functor name
    int64_t _int = 0;          // Int
    double _float = 0.0;       // Float
    std::vector<TermRef> args_; // Struct
    std::string _varName;      // Var
    uint64_t _varId = 0;       // Var: process-unique id
};

/** Collect the distinct variables of @p t in first-occurrence order. */
void collectVars(const TermRef &t, std::vector<TermRef> &out);

/** Number of distinct variables in @p t. */
size_t countVars(const TermRef &t);

} // namespace kcm

#endif // KCM_PROLOG_TERM_HH
