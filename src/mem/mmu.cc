#include "mem/mmu.hh"

#include "base/logging.hh"

namespace kcm
{

Mmu::Mmu(MainMemory &memory)
    : memory_(memory), table_(2 * numVirtualPages), stats_("mmu")
{
    stats_.add("translations", translations);
    stats_.add("demandFaults", demandFaults);
}

PageEntry &
Mmu::entry(AddrSpace space, uint32_t virtual_page)
{
    if (virtual_page >= numVirtualPages)
        panic("virtual page out of range: ", virtual_page);
    return table_[static_cast<uint32_t>(space) * numVirtualPages +
                  virtual_page];
}

uint16_t
Mmu::allocPhysPage()
{
    uint32_t total_pages =
        static_cast<uint32_t>(memory_.sizeWords() >> pageShift);
    if (nextPhysPage_ >= total_pages) {
        throw MachineTrap(TrapKind::PageFault,
                          "out of physical memory pages");
    }
    return nextPhysPage_++;
}

PhysAddr
Mmu::translateSlow(AddrSpace space, Addr vaddr, bool is_write)
{
    // translations was already counted by the inline fast path.
    if (injectFault_) [[unlikely]] {
        injectFault_ = false;
        throw MachineTrap(TrapKind::PageFault,
                          cat("injected page fault at 0x", std::hex,
                              vaddr),
                          vaddr);
    }
    if (vaddr & ~addrMask) {
        throw MachineTrap(TrapKind::PageFault,
                          cat("address above implemented bits: 0x",
                              std::hex, vaddr),
                          vaddr);
    }
    uint32_t page = vaddr >> pageShift;
    PageEntry &pe = entry(space, page);
    if (!pe.valid()) {
        // Demand allocation: the host's paging server maps a fresh
        // physical page.
        ++demandFaults;
        pe.setPhysPage(allocPhysPage());
        pe.setValid(true);
        pe.setWritable(true);
    }
    pe.setReferenced(true);
    if (is_write) {
        if (!pe.writable()) {
            throw MachineTrap(TrapKind::WriteProtection,
                              cat("write to protected page 0x", std::hex,
                                  page),
                              vaddr);
        }
        pe.setDirty(true);
    }
    return (PhysAddr(pe.physPage()) << pageShift) |
           (vaddr & (pageSizeWords - 1));
}

void
Mmu::attachDataPageToCode(uint32_t data_page, uint32_t code_page)
{
    PageEntry &from = entry(AddrSpace::Data, data_page);
    if (!from.valid())
        fatal("attachDataPageToCode: data page not mapped");
    PageEntry &to = entry(AddrSpace::Code, code_page);
    to.setPhysPage(from.physPage());
    to.setValid(true);
    to.setWritable(false);
    from.setValid(false);
}

} // namespace kcm
