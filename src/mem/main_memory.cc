#include "mem/main_memory.hh"

#include "base/logging.hh"

namespace kcm
{

MainMemory::MainMemory(size_t size_words)
    : data_(static_cast<uint64_t *>(
          std::calloc(size_words ? size_words : 1, sizeof(uint64_t)))),
      sizeWords_(size_words), stats_("memory")
{
    if (!data_)
        panic("cannot allocate ", size_words, "-word main memory");
    stats_.add("readWords", readWords);
    stats_.add("writtenWords", writtenWords);
    stats_.add("transactions", transactions);
}

void
MainMemory::checkRange(PhysAddr addr, unsigned count) const
{
    if (size_t(addr) + count > sizeWords_)
        panic("physical access out of range: 0x", std::hex, addr, " + ",
              std::dec, count);
}

unsigned
MainMemory::readBurst(PhysAddr addr, uint64_t *out, unsigned count)
{
    checkRange(addr, count);
    for (unsigned i = 0; i < count; ++i)
        out[i] = data_[addr + i];
    readWords += count;
    ++transactions;
    return timings_.firstWord + (count - 1) * timings_.pageModeWord;
}

unsigned
MainMemory::writeBurst(PhysAddr addr, const uint64_t *in, unsigned count)
{
    checkRange(addr, count);
    for (unsigned i = 0; i < count; ++i)
        data_[addr + i] = in[i];
    writtenWords += count;
    ++transactions;
    return timings_.firstWord + (count - 1) * timings_.pageModeWord;
}

uint64_t
MainMemory::peek(PhysAddr addr) const
{
    checkRange(addr, 1);
    return data_[addr];
}

void
MainMemory::poke(PhysAddr addr, uint64_t value)
{
    checkRange(addr, 1);
    data_[addr] = value;
}

} // namespace kcm
