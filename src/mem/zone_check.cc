#include "mem/zone_check.hh"

#include "base/logging.hh"

namespace kcm
{

ZoneChecker::ZoneChecker() : stats_("zoneCheck")
{
    stats_.add("checksPerformed", checksPerformed);
}

void
ZoneChecker::configure(Zone zone, const ZoneInfo &info)
{
    zones_[static_cast<unsigned>(zone)] = info;
    zones_[static_cast<unsigned>(zone)].enabled = true;
}

void
ZoneChecker::setLimits(Zone zone, Addr start, Addr end)
{
    ZoneInfo &zi = zones_[static_cast<unsigned>(zone)];
    zi.start = start;
    zi.end = end;
}

const ZoneInfo &
ZoneChecker::info(Zone zone) const
{
    return zones_[static_cast<unsigned>(zone)];
}

void
ZoneChecker::check(Word addr_word, bool is_write) const
{
    if (!enabled_)
        return;
    ++checksPerformed;

    // The 4 most significant address bits beyond the implemented 28
    // must be zero (§3.2.3).
    if (addr_word.value() & ~addrMask) {
        throw MachineTrap(TrapKind::ZoneViolation,
                          cat("address bits above bit 27 set: ",
                              addr_word.toString()));
    }

    const ZoneInfo &zi = zones_[static_cast<unsigned>(addr_word.zone())];
    if (!zi.enabled) {
        throw MachineTrap(TrapKind::ZoneViolation,
                          cat("access through unconfigured zone: ",
                              addr_word.toString()));
    }

    uint16_t tag_bit = uint16_t(1u << static_cast<unsigned>(addr_word.tag()));
    if (!(zi.allowedTags & tag_bit)) {
        throw MachineTrap(TrapKind::TypeViolation,
                          cat("type ", tagName(addr_word.tag()),
                              " not allowed as address into zone ",
                              zoneName(addr_word.zone())));
    }

    Addr a = addr_word.addr();
    if (a < zi.start || a >= zi.end) {
        throw MachineTrap(TrapKind::ZoneViolation,
                          cat("address 0x", std::hex, a,
                              " outside zone ", zoneName(addr_word.zone()),
                              " [0x", zi.start, ", 0x", zi.end, ")"));
    }

    if (is_write && zi.writeProtected) {
        throw MachineTrap(TrapKind::WriteProtection,
                          cat("write into protected zone ",
                              zoneName(addr_word.zone())));
    }
}

void
installStandardZones(ZoneChecker &checker, const DataLayout &layout)
{
    // Lists and structures are constructed on the global stack, so
    // list/struct are allowed as addresses there, along with reference
    // and data pointer (§3.2.3).
    ZoneInfo global;
    global.start = layout.globalStart;
    global.end = layout.globalEnd;
    global.allowedTags =
        tagMask({Tag::Ref, Tag::List, Tag::Struct, Tag::DataPtr});
    checker.configure(Zone::Global, global);

    // On the local stack only reference and data pointer are allowed.
    ZoneInfo local;
    local.start = layout.localStart;
    local.end = layout.localEnd;
    local.allowedTags = tagMask({Tag::Ref, Tag::DataPtr});
    checker.configure(Zone::Local, local);

    // The choice point stack allows only data pointers: no reference
    // may ever point into it.
    ZoneInfo control;
    control.start = layout.controlStart;
    control.end = layout.controlEnd;
    control.allowedTags = tagMask({Tag::DataPtr});
    checker.configure(Zone::Control, control);

    ZoneInfo trail;
    trail.start = layout.trailStart;
    trail.end = layout.trailEnd;
    trail.allowedTags = tagMask({Tag::DataPtr});
    checker.configure(Zone::TrailZ, trail);

    ZoneInfo static_area;
    static_area.start = layout.staticStart;
    static_area.end = layout.staticEnd;
    static_area.allowedTags =
        tagMask({Tag::Ref, Tag::List, Tag::Struct, Tag::DataPtr});
    checker.configure(Zone::Static, static_area);
}

} // namespace kcm
