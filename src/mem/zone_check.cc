#include "mem/zone_check.hh"

#include <algorithm>

#include "base/logging.hh"

namespace kcm
{

namespace
{

// Trap throwers, out of line and cold: check() runs on every data
// access, so its hot path should carry only the comparisons — the
// message formatting and throw machinery live here and cost nothing
// until a trap actually fires.

[[noreturn, gnu::cold, gnu::noinline]] void
trapHighAddressBits(Word addr_word)
{
    throw MachineTrap(TrapKind::ZoneViolation,
                      cat("address bits above bit 27 set: ",
                          addr_word.toString()),
                      addr_word.addr());
}

[[noreturn, gnu::cold, gnu::noinline]] void
trapUnconfiguredZone(Word addr_word)
{
    throw MachineTrap(TrapKind::ZoneViolation,
                      cat("access through unconfigured zone: ",
                          addr_word.toString()),
                      addr_word.addr());
}

[[noreturn, gnu::cold, gnu::noinline]] void
trapDisallowedTag(Word addr_word)
{
    throw MachineTrap(TrapKind::TypeViolation,
                      cat("type ", tagName(addr_word.tag()),
                          " not allowed as address into zone ",
                          zoneName(addr_word.zone())),
                      addr_word.addr());
}

[[noreturn, gnu::cold, gnu::noinline]] void
trapOutsideZone(Word addr_word, const ZoneInfo &zi)
{
    // A governed stack zone still has headroom between its quota
    // (softLimit) and its hard end: crossing the quota is the §3.2.3
    // stack-overflow trap, which firmware can serve by growing the
    // zone. Everything else is a plain zone violation.
    Addr a = addr_word.addr();
    if (zi.growable && a >= zi.softLimit && a < zi.end) {
        throw MachineTrap(TrapKind::StackOverflow,
                          cat("stack overflow in zone ",
                              zoneName(addr_word.zone()), ": address 0x",
                              std::hex, a, " beyond quota 0x",
                              zi.softLimit),
                          a);
    }
    throw MachineTrap(TrapKind::ZoneViolation,
                      cat("address 0x", std::hex, a, " outside zone ",
                          zoneName(addr_word.zone()), " [0x", zi.start,
                          ", 0x", zi.softLimit, ")"),
                      a);
}

[[noreturn, gnu::cold, gnu::noinline]] void
trapWriteProtected(Word addr_word)
{
    throw MachineTrap(TrapKind::WriteProtection,
                      cat("write into protected zone ",
                          zoneName(addr_word.zone())),
                      addr_word.addr());
}

} // namespace

ZoneChecker::ZoneChecker() : stats_("zoneCheck")
{
    stats_.add("checksPerformed", checksPerformed);
}

void
ZoneChecker::configure(Zone zone, const ZoneInfo &info)
{
    ZoneInfo &zi = zones_[static_cast<unsigned>(zone)];
    zi = info;
    zi.enabled = true;
    if (zi.softLimit == 0 || zi.softLimit > zi.end)
        zi.softLimit = zi.end;
}

void
ZoneChecker::setLimits(Zone zone, Addr start, Addr end)
{
    ZoneInfo &zi = zones_[static_cast<unsigned>(zone)];
    zi.start = start;
    zi.end = end;
    if (!zi.growable || zi.softLimit > end)
        zi.softLimit = end;
}

void
ZoneChecker::setQuota(Zone zone, Addr soft_limit)
{
    ZoneInfo &zi = zones_[static_cast<unsigned>(zone)];
    zi.softLimit = std::min(soft_limit, zi.end);
    zi.growable = true;
}

bool
ZoneChecker::growSoftLimit(Zone zone, Addr step_words, Addr ceiling)
{
    ZoneInfo &zi = zones_[static_cast<unsigned>(zone)];
    Addr cap = std::min(zi.end, ceiling ? ceiling : zi.end);
    if (zi.softLimit >= cap)
        return false;
    Addr headroom = cap - zi.softLimit;
    zi.softLimit += std::min<Addr>(step_words, headroom);
    return true;
}

const ZoneInfo &
ZoneChecker::info(Zone zone) const
{
    return zones_[static_cast<unsigned>(zone)];
}

void
ZoneChecker::failCheck(Word addr_word, bool is_write) const
{
    // The 4 most significant address bits beyond the implemented 28
    // must be zero (§3.2.3).
    if (addr_word.value() & ~addrMask)
        trapHighAddressBits(addr_word);

    const ZoneInfo &zi = zones_[static_cast<unsigned>(addr_word.zone())];
    if (!zi.enabled)
        trapUnconfiguredZone(addr_word);

    uint16_t tag_bit = uint16_t(1u << static_cast<unsigned>(addr_word.tag()));
    if (!(zi.allowedTags & tag_bit))
        trapDisallowedTag(addr_word);

    Addr a = addr_word.addr();
    if (a < zi.start || a >= zi.softLimit)
        trapOutsideZone(addr_word, zi);

    trapWriteProtected(addr_word);
    (void)is_write;
}

void
installStandardZones(ZoneChecker &checker, const DataLayout &layout)
{
    // Lists and structures are constructed on the global stack, so
    // list/struct are allowed as addresses there, along with reference
    // and data pointer (§3.2.3).
    ZoneInfo global;
    global.start = layout.globalStart;
    global.end = layout.globalEnd;
    global.allowedTags =
        tagMask({Tag::Ref, Tag::List, Tag::Struct, Tag::DataPtr});
    checker.configure(Zone::Global, global);

    // On the local stack only reference and data pointer are allowed.
    ZoneInfo local;
    local.start = layout.localStart;
    local.end = layout.localEnd;
    local.allowedTags = tagMask({Tag::Ref, Tag::DataPtr});
    checker.configure(Zone::Local, local);

    // The choice point stack allows only data pointers: no reference
    // may ever point into it.
    ZoneInfo control;
    control.start = layout.controlStart;
    control.end = layout.controlEnd;
    control.allowedTags = tagMask({Tag::DataPtr});
    checker.configure(Zone::Control, control);

    ZoneInfo trail;
    trail.start = layout.trailStart;
    trail.end = layout.trailEnd;
    trail.allowedTags = tagMask({Tag::DataPtr});
    checker.configure(Zone::TrailZ, trail);

    ZoneInfo static_area;
    static_area.start = layout.staticStart;
    static_area.end = layout.staticEnd;
    static_area.allowedTags =
        tagMask({Tag::Ref, Tag::List, Tag::Struct, Tag::DataPtr});
    checker.configure(Zone::Static, static_area);
}

} // namespace kcm
