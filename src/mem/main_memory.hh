/**
 * @file
 * Physical main memory model (§3.2.6).
 *
 * One 32-Mbyte board of 64-bit words, accessed over a 32-bit bus using
 * fast page mode: a 64-bit word costs two 32-bit page-mode accesses;
 * sequential words within the same DRAM page are cheaper, which the
 * code cache exploits to prefetch.
 */

#ifndef KCM_MEM_MAIN_MEMORY_HH
#define KCM_MEM_MAIN_MEMORY_HH

#include <cstdint>
#include <cstdlib>
#include <memory>

#include "base/stats.hh"

namespace kcm
{

/** A physical word address. */
using PhysAddr = uint32_t;

/** Cycle costs of physical memory transactions (in CPU cycles). */
struct MemTimings
{
    /** First 64-bit word of a transaction (row activate + 2 column
     *  accesses over the 32-bit bus). */
    unsigned firstWord = 4;
    /** Each further sequential word in fast page mode. */
    unsigned pageModeWord = 2;
};

/** Word-addressed physical memory with transaction timing. */
class MainMemory
{
  public:
    /** @param size_words capacity (default: one 32-Mbyte board). */
    explicit MainMemory(size_t size_words = 4 * 1024 * 1024);

    size_t sizeWords() const { return sizeWords_; }

    /** Read @p count sequential words starting at @p addr.
     *  @return the cycle cost of the transaction. */
    unsigned readBurst(PhysAddr addr, uint64_t *out, unsigned count);

    /** Write @p count sequential words.
     *  @return the cycle cost of the transaction. */
    unsigned writeBurst(PhysAddr addr, const uint64_t *in, unsigned count);

    /** Untimed access for loaders and debuggers. */
    uint64_t peek(PhysAddr addr) const;
    void poke(PhysAddr addr, uint64_t value);

    const MemTimings &timings() const { return timings_; }
    void setTimings(const MemTimings &t) { timings_ = t; }

    StatGroup &stats() { return stats_; }

    Counter readWords;
    Counter writtenWords;
    Counter transactions;

  private:
    void checkRange(PhysAddr addr, unsigned count) const;

    struct FreeDeleter
    {
        void operator()(uint64_t *p) const { std::free(p); }
    };

    // calloc-backed so the 32-Mbyte board is lazily zeroed by the
    // host kernel: untouched pages are never faulted in, which makes
    // constructing a Machine cheap (reads of untouched words still
    // return 0, exactly as the old eagerly-zeroed vector did).
    std::unique_ptr<uint64_t[], FreeDeleter> data_;
    size_t sizeWords_ = 0;
    MemTimings timings_;
    StatGroup stats_;
};

} // namespace kcm

#endif // KCM_MEM_MAIN_MEMORY_HH
