/**
 * @file
 * Machine traps raised by the memory system and the execution unit.
 *
 * §3.2.3: the KCM memory system detects zone, type and protection
 * violations and signals them to firmware, which either repairs the
 * condition (grow a stack zone, run a collection) and resumes, or
 * surfaces the fault to the Prolog level. In this simulator a trap is
 * thrown as a MachineTrap and caught at the run-loop boundary of the
 * execution cores, which convert it into RunStatus::Trapped carrying
 * a structured TrapInfo — the machine object stays valid, inspectable
 * and reloadable after any trap.
 */

#ifndef KCM_MEM_TRAPS_HH
#define KCM_MEM_TRAPS_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace kcm
{

/** Reasons the machine can trap. */
enum class TrapKind
{
    ZoneViolation,     ///< address outside its zone's limits (§3.2.3)
    TypeViolation,     ///< type not allowed as address into the zone
    WriteProtection,   ///< write to a protected zone
    PageFault,         ///< unrecoverable page fault
    BadInstruction,    ///< undecodable opcode
    StackOverflow,     ///< stack pointer crossed its zone limit
    Abort,             ///< execution aborted (cycle budget, user stop)
    UnhandledException, ///< thrown Prolog ball with no catch/3 marker
    MemoryBudget,      ///< per-query resident-byte ceiling exceeded
};

/** Human-readable trap kind name. */
const char *trapKindName(TrapKind kind);

/**
 * Whether a trap kind is a resource condition (the ISO Prolog
 * resource_error family: memory or cycle budget exhaustion) rather
 * than a program/machine fault.
 */
constexpr bool
trapIsResource(TrapKind kind)
{
    return kind == TrapKind::StackOverflow || kind == TrapKind::Abort ||
           kind == TrapKind::MemoryBudget;
}

/**
 * Structured description of a taken trap, filled by the execution
 * core when a MachineTrap reaches the run-loop boundary. The cycle
 * and instruction counts are rolled back to the last completed
 * instruction boundary, so both dispatch cores report the identical
 * (kind, pc, cycle) triple for the same fault.
 */
struct TrapInfo
{
    TrapKind kind = TrapKind::Abort;
    std::string message;   ///< formatted diagnosis from the trap site
    uint32_t pc = 0;       ///< address of the faulting instruction
    uint32_t faultAddr = 0; ///< faulting data address (0 if n/a)
    uint64_t cycle = 0;    ///< cycle count at the trap boundary
    uint64_t instructions = 0; ///< completed instructions at the trap
    std::string state;     ///< one-line register snapshot

    /** One-line summary: "stack_overflow at pc=0x... cycle=... : msg". */
    std::string toString() const;
};

/**
 * Structured diagnosis term for reports and APIs — always a valid,
 * re-readable Prolog term: "resource_error(<kind>)" for governor
 * exhaustion (stack ceiling, cycle budget),
 * "unhandled_exception(<ball>)" for an uncaught throw/1 (the ball is
 * pre-formatted, quoted, in TrapInfo::message), and
 * "machine_trap(<kind>)" otherwise. The human-readable detail line
 * stays available via TrapInfo::toString().
 */
std::string trapDiagnosis(const TrapInfo &info);

/** A trap thrown out of the simulated machine. */
class MachineTrap : public std::runtime_error
{
  public:
    MachineTrap(TrapKind kind, const std::string &msg,
                uint32_t fault_addr = 0)
        : std::runtime_error(msg), _kind(kind), _faultAddr(fault_addr)
    {
    }

    TrapKind kind() const { return _kind; }
    /** The faulting data address, when the trap came off the data
     *  path (0 otherwise). */
    uint32_t faultAddr() const { return _faultAddr; }

  private:
    TrapKind _kind;
    uint32_t _faultAddr;
};

} // namespace kcm

#endif // KCM_MEM_TRAPS_HH
