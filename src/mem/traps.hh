/**
 * @file
 * Machine traps raised by the memory system and the execution unit.
 */

#ifndef KCM_MEM_TRAPS_HH
#define KCM_MEM_TRAPS_HH

#include <stdexcept>
#include <string>

namespace kcm
{

/** Reasons the machine can trap. */
enum class TrapKind
{
    ZoneViolation,     ///< address outside its zone's limits (§3.2.3)
    TypeViolation,     ///< type not allowed as address into the zone
    WriteProtection,   ///< write to a protected zone
    PageFault,         ///< unrecoverable page fault
    BadInstruction,    ///< undecodable opcode
    StackOverflow,     ///< stack pointer crossed its zone limit
    Abort,             ///< execution aborted (cycle budget, user stop)
};

/** A trap thrown out of the simulated machine. */
class MachineTrap : public std::runtime_error
{
  public:
    MachineTrap(TrapKind kind, const std::string &msg)
        : std::runtime_error(msg), _kind(kind)
    {
    }

    TrapKind kind() const { return _kind; }

  private:
    TrapKind _kind;
};

} // namespace kcm

#endif // KCM_MEM_TRAPS_HH
