/**
 * @file
 * Zone check: protection at the level of virtual addresses (§3.2.3).
 *
 * Every stack and memory area is mapped to a zone defined by a start
 * and an end address (4K-word granularity in hardware: bits 27..12 are
 * range-compared against a RAM field). Each zone additionally carries
 * a mask of data types allowed to address into it and a
 * write-protection flag, catching uses like "a float used as an
 * address" before they corrupt the logical cache.
 */

#ifndef KCM_MEM_ZONE_CHECK_HH
#define KCM_MEM_ZONE_CHECK_HH

#include <array>
#include <cstdint>

#include "base/stats.hh"
#include "isa/word.hh"
#include "mem/traps.hh"

namespace kcm
{

/** Configuration of one zone. */
struct ZoneInfo
{
    Addr start = 0;       ///< lowest valid word address (inclusive)
    Addr end = 0;         ///< highest valid word address (exclusive)
    /**
     * Current working limit (exclusive). Normally equal to end; the
     * resource governor sets it below end to impose a memory quota,
     * and firmware-style stack growth raises it back toward end on
     * StackOverflow traps. The fast-path range comparison tests
     * against this field only, so an ungoverned zone (softLimit ==
     * end) pays nothing for the mechanism.
     */
    Addr softLimit = 0;
    uint16_t allowedTags = 0; ///< bit i set: Tag(i) may address the zone
    bool writeProtected = false;
    bool enabled = false; ///< unconfigured zones trap on any access
    /** Accesses in [softLimit, end) raise StackOverflow (recoverable
     *  by growing softLimit) instead of ZoneViolation. Set for the
     *  stack zones when a quota is configured. */
    bool growable = false;
};

/** Build an allowed-tags mask from a tag list. */
constexpr uint16_t
tagMask(std::initializer_list<Tag> tags)
{
    uint16_t mask = 0;
    for (Tag t : tags)
        mask |= uint16_t(1u << static_cast<unsigned>(t));
    return mask;
}

/**
 * The zone-check unit sitting on the data-cache access path.
 *
 * check() raises MachineTrap on violation; it costs no cycles (the
 * comparators work in parallel with the cache access).
 */
class ZoneChecker
{
  public:
    ZoneChecker();

    /** Configure @p zone; limits may be changed dynamically. A zero
     *  softLimit defaults to end (no quota). */
    void configure(Zone zone, const ZoneInfo &info);

    /** Dynamically grow/move a zone's limits (stack growth). Keeps
     *  the soft limit clamped inside the new range. */
    void setLimits(Zone zone, Addr start, Addr end);

    /**
     * Impose a memory quota: cap the zone's working limit at
     * @p soft_limit (clamped to the hard end) and mark the zone
     * growable, so crossing the quota raises a recoverable
     * StackOverflow instead of a ZoneViolation.
     */
    void setQuota(Zone zone, Addr soft_limit);

    /**
     * Firmware stack growth: raise the zone's soft limit by
     * @p step_words, clamped to min(hard end, @p ceiling).
     * @return false when the limit is already at the ceiling (the
     *         overflow is then not recoverable).
     */
    bool growSoftLimit(Zone zone, Addr step_words, Addr ceiling);

    const ZoneInfo &info(Zone zone) const;

    /**
     * Validate a data access through address word @p addr_word.
     * @param is_write whether the access is a store.
     * Throws MachineTrap on violation.
     *
     * The hot path is one branchless condition inline (the hardware
     * comparators all fire in parallel); on any violation the cold
     * out-of-line failCheck() replays the individual comparisons in
     * the documented priority order to throw the right trap.
     */
    void
    check(Word addr_word, bool is_write) const
    {
        if (!enabled_)
            return;
        ++checksPerformed;
        const ZoneInfo &zi =
            zones_[static_cast<unsigned>(addr_word.zone())];
        uint16_t tag_bit =
            uint16_t(1u << static_cast<unsigned>(addr_word.tag()));
        Addr a = addr_word.addr();
        bool ok = !(addr_word.value() & ~addrMask) && zi.enabled &&
                  (zi.allowedTags & tag_bit) && a >= zi.start &&
                  a < zi.softLimit && !(is_write && zi.writeProtected);
        if (ok) [[likely]]
            return;
        failCheck(addr_word, is_write);
    }

    /** Enable/disable the whole unit (ablation studies). */
    void setEnabled(bool enabled) { enabled_ = enabled; }

    StatGroup &stats() { return stats_; }

    mutable Counter checksPerformed;

  private:
    friend struct SnapshotAccess;

    /** Cold path of check(): diagnose the violation (in the same
     *  priority order the inline condition folds together) and throw
     *  the corresponding MachineTrap. */
    [[noreturn, gnu::cold, gnu::noinline]] void
    failCheck(Word addr_word, bool is_write) const;

    std::array<ZoneInfo, 16> zones_;
    bool enabled_ = true;
    StatGroup stats_;
};

/**
 * Install the standard KCM zone layout expected by the runtime
 * (global/local/control/trail/static areas with the paper's type
 * rules: lists and structures may address the global stack only;
 * no reference may ever point into the choice point stack; numbers
 * are never addresses).
 */
struct DataLayout
{
    Addr staticStart = 0x0010000;
    Addr staticEnd = 0x0080000;
    Addr globalStart = 0x0100000;
    Addr globalEnd = 0x0200000;
    Addr localStart = 0x0200000;
    Addr localEnd = 0x0300000;
    Addr controlStart = 0x0300000;
    Addr controlEnd = 0x0380000;
    Addr trailStart = 0x0400000;
    Addr trailEnd = 0x0480000;
};

void installStandardZones(ZoneChecker &checker, const DataLayout &layout);

} // namespace kcm

#endif // KCM_MEM_ZONE_CHECK_HH
