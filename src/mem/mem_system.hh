/**
 * @file
 * The complete KCM memory system: two logical caches over a shared
 * physical memory, with zone checking on the data path (Fig. 4).
 */

#ifndef KCM_MEM_MEM_SYSTEM_HH
#define KCM_MEM_MEM_SYSTEM_HH

#include <memory>

#include "base/stats.hh"
#include "isa/word.hh"
#include "mem/code_cache.hh"
#include "mem/data_cache.hh"
#include "mem/main_memory.hh"
#include "mem/mmu.hh"
#include "mem/zone_check.hh"

namespace kcm
{

struct MemSystemConfig
{
    size_t memoryWords = 4 * 1024 * 1024; ///< one 32-Mbyte board
    DataCacheConfig dataCache;
    CodeCacheConfig codeCache;
    bool zoneCheckEnabled = true;
    DataLayout layout;
};

/**
 * Owns and wires the memory hierarchy. The execution unit calls
 * readData/writeData with full tagged address words (so the zone check
 * can do its job); the prefetch unit calls fetchCode.
 *
 * All timed methods add any cycles beyond the 1-cycle cache access to
 * @p penalty_cycles.
 */
class MemSystem
{
  public:
    explicit MemSystem(const MemSystemConfig &config = {});

    /** Timed, checked data read through the data cache. */
    Word
    readData(Word addr_word, unsigned &penalty_cycles)
    {
        zoneChecker_->check(addr_word, false);
        return dataCache_->read(addr_word, penalty_cycles);
    }

    /** Timed, checked data write through the data cache. */
    void
    writeData(Word addr_word, Word value, unsigned &penalty_cycles)
    {
        zoneChecker_->check(addr_word, true);
        dataCache_->write(addr_word, value, penalty_cycles);
    }

    /** Timed instruction fetch through the code cache. */
    uint64_t
    fetchCode(Addr addr, unsigned &penalty_cycles)
    {
        return codeCache_->read(addr, penalty_cycles);
    }

    /** Timed instruction fetch whose word is discarded (the
     *  predecoded core already has it): cache statistics and
     *  penalties are identical to fetchCode. */
    void touchCode(Addr addr, unsigned &penalty_cycles)
    {
        codeCache_->touch(addr, penalty_cycles);
    }

    /** Timed code write (incremental compilation path). */
    void writeCode(Addr addr, uint64_t value, unsigned &penalty_cycles);

    // Untimed, uncached accessors for loaders, debuggers and tests.
    Word peekData(Addr addr);
    void pokeData(Addr addr, Word value);
    uint64_t peekCode(Addr addr);
    void pokeCode(Addr addr, uint64_t value);

    MainMemory &memory() { return *memory_; }
    Mmu &mmu() { return *mmu_; }
    ZoneChecker &zoneChecker() { return *zoneChecker_; }
    DataCache &dataCache() { return *dataCache_; }
    CodeCache &codeCache() { return *codeCache_; }
    const MemSystemConfig &config() const { return config_; }
    const DataLayout &layout() const { return config_.layout; }

    StatGroup &stats() { return stats_; }

  private:
    MemSystemConfig config_;
    std::unique_ptr<MainMemory> memory_;
    std::unique_ptr<Mmu> mmu_;
    std::unique_ptr<ZoneChecker> zoneChecker_;
    std::unique_ptr<DataCache> dataCache_;
    std::unique_ptr<CodeCache> codeCache_;
    StatGroup stats_;
};

} // namespace kcm

#endif // KCM_MEM_MEM_SYSTEM_HH
