/**
 * @file
 * The KCM code cache (§3.2.4).
 *
 * 8K x 64-bit, logical, direct mapped, line size one, write-through.
 * Being write-through, it can use the memory's fast page mode to fetch
 * a few words ahead when a miss occurs; the prefetch depth is
 * configurable.
 */

#ifndef KCM_MEM_CODE_CACHE_HH
#define KCM_MEM_CODE_CACHE_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "isa/word.hh"
#include "mem/main_memory.hh"
#include "mem/mmu.hh"

namespace kcm
{

struct CodeCacheConfig
{
    unsigned sizeWords = 8192; ///< power of two
    unsigned prefetchWords = 4; ///< words fetched ahead on a miss
    bool enabled = true;
};

/** Virtually-indexed write-through instruction cache. */
class CodeCache
{
  public:
    CodeCache(Mmu &mmu, MainMemory &memory,
              const CodeCacheConfig &config = {});

    /** Fetch the instruction word at code address @p addr. The hit
     *  path is inline (one fetch per simulated instruction makes this
     *  the hottest call in the simulator); misses take the cold
     *  out-of-line burst-fill path. */
    uint64_t
    read(Addr addr, unsigned &penalty_cycles)
    {
        if (config_.enabled) [[likely]] {
            Cell &cell = cells_[addr & (config_.sizeWords - 1)];
            if (cell.valid && cell.vaddr == addr) [[likely]] {
                ++readHits;
                return cell.data;
            }
        }
        return readMiss(addr, penalty_cycles);
    }

    /** Fetch for timing and statistics only (predecoded execution
     *  keeps its own copy of the word): hit/miss accounting, fills
     *  and penalties are exactly those of read(). */
    void touch(Addr addr, unsigned &penalty_cycles)
    {
        (void)read(addr, penalty_cycles);
    }

    /**
     * Write @p value at code address @p addr (incremental compilation
     * writes directly into the code cache and through to memory,
     * §3.2.1).
     */
    void write(Addr addr, uint64_t value, unsigned &penalty_cycles);

    void invalidateAll();

    StatGroup &stats() { return stats_; }

    Counter readHits;
    Counter readMisses;
    Counter writes;

    double
    hitRatio() const
    {
        uint64_t total = readHits.value() + readMisses.value();
        if (!total)
            return 1.0;
        return double(readHits.value()) / double(total);
    }

  private:
    friend struct SnapshotAccess;

    struct Cell
    {
        bool valid = false;
        Addr vaddr = 0;
        uint64_t data = 0;
    };

    void fill(Addr addr, uint64_t data);

    /** Cold path of read(): cache disabled or miss. Does the
     *  page-mode burst fill and accounting. */
    uint64_t readMiss(Addr addr, unsigned &penalty_cycles);

    Mmu &mmu_;
    MainMemory &memory_;
    CodeCacheConfig config_;
    std::vector<Cell> cells_;
    StatGroup stats_;
};

} // namespace kcm

#endif // KCM_MEM_CODE_CACHE_HH
