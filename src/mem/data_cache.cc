#include "mem/data_cache.hh"

#include "base/logging.hh"

namespace kcm
{

DataCache::DataCache(Mmu &mmu, MainMemory &memory,
                     const DataCacheConfig &config)
    : mmu_(mmu), memory_(memory), config_(config),
      cells_(size_t(config.sectionWords) * config.sections),
      stats_("dcache")
{
    if (config_.sectionWords == 0 ||
        (config_.sectionWords & (config_.sectionWords - 1))) {
        fatal("data cache section size must be a power of two");
    }
    stats_.add("readHits", readHits);
    stats_.add("readMisses", readMisses);
    stats_.add("writeHits", writeHits);
    stats_.add("writeMisses", writeMisses);
    stats_.add("writeBacks", writeBacks);
}

void
DataCache::evict(Cell &cell, unsigned &penalty_cycles)
{
    if (cell.valid && cell.dirty) {
        PhysAddr pa = mmu_.translate(AddrSpace::Data, cell.vaddr, true);
        penalty_cycles += memory_.writeBurst(pa, &cell.data, 1);
        ++writeBacks;
    }
    cell.valid = false;
    cell.dirty = false;
}

Word
DataCache::readMiss(Word addr_word, unsigned &penalty_cycles)
{
    Addr a = addr_word.addr();

    if (!config_.enabled) {
        ++readMisses;
        PhysAddr pa = mmu_.translate(AddrSpace::Data, a, false);
        uint64_t raw = 0;
        penalty_cycles += memory_.readBurst(pa, &raw, 1);
        return Word(raw);
    }

    Cell &cell = cells_[indexOf(addr_word)];
    ++readMisses;
    evict(cell, penalty_cycles);
    PhysAddr pa = mmu_.translate(AddrSpace::Data, a, false);
    uint64_t raw = 0;
    penalty_cycles += memory_.readBurst(pa, &raw, 1);
    cell.valid = true;
    cell.dirty = false;
    cell.vaddr = a;
    cell.data = raw;
    return Word(raw);
}

void
DataCache::writeMiss(Word addr_word, Word value, unsigned &penalty_cycles)
{
    Addr a = addr_word.addr();

    if (!config_.enabled) {
        ++writeMisses;
        PhysAddr pa = mmu_.translate(AddrSpace::Data, a, true);
        uint64_t raw = value.raw();
        penalty_cycles += memory_.writeBurst(pa, &raw, 1);
        return;
    }

    Cell &cell = cells_[indexOf(addr_word)];
    ++writeMisses;
    // Line size one: allocate without fetching from memory.
    evict(cell, penalty_cycles);
    cell.valid = true;
    cell.vaddr = a;
    cell.data = value.raw();
    cell.dirty = true;
}

bool
DataCache::probe(Word addr_word, Word &out) const
{
    if (!config_.enabled)
        return false;
    const Cell &cell = cells_[indexOf(addr_word)];
    if (cell.valid && cell.vaddr == addr_word.addr()) {
        out = Word(cell.data);
        return true;
    }
    return false;
}

void
DataCache::pokeCoherent(Word addr_word, Word value)
{
    if (config_.enabled) {
        Cell &cell = cells_[indexOf(addr_word)];
        if (cell.valid && cell.vaddr == addr_word.addr()) {
            cell.data = value.raw();
            cell.dirty = true;
            return;
        }
    }
    PhysAddr pa = mmu_.translate(AddrSpace::Data, addr_word.addr(), true);
    memory_.poke(pa, value.raw());
}

void
DataCache::flushAll()
{
    unsigned penalty = 0;
    for (auto &cell : cells_) {
        evict(cell, penalty);
    }
}

void
DataCache::invalidateAll()
{
    for (auto &cell : cells_) {
        cell.valid = false;
        cell.dirty = false;
    }
}

} // namespace kcm
