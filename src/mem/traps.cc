#include "mem/traps.hh"

#include <sstream>

namespace kcm
{

const char *
trapKindName(TrapKind kind)
{
    switch (kind) {
      case TrapKind::ZoneViolation:   return "zone_violation";
      case TrapKind::TypeViolation:   return "type_violation";
      case TrapKind::WriteProtection: return "write_protection";
      case TrapKind::PageFault:       return "page_fault";
      case TrapKind::BadInstruction:  return "bad_instruction";
      case TrapKind::StackOverflow:   return "stack_overflow";
      case TrapKind::Abort:           return "abort";
      case TrapKind::UnhandledException: return "unhandled_exception";
      case TrapKind::MemoryBudget:    return "memory";
    }
    return "unknown_trap";
}

std::string
TrapInfo::toString() const
{
    std::ostringstream os;
    os << trapKindName(kind) << " at pc=0x" << std::hex << pc;
    if (faultAddr)
        os << " addr=0x" << faultAddr;
    os << std::dec << " cycle=" << cycle << " instr=" << instructions;
    if (!message.empty())
        os << ": " << message;
    return os.str();
}

std::string
trapDiagnosis(const TrapInfo &info)
{
    // Always a valid Prolog term (the trap kind names are lowercase
    // unquoted atoms; a ball message is pre-quoted by the writer).
    if (info.kind == TrapKind::UnhandledException && !info.message.empty())
        return "unhandled_exception(" + info.message + ")";
    std::string out = trapIsResource(info.kind) ? "resource_error("
                                                : "machine_trap(";
    out += trapKindName(info.kind);
    out += ")";
    return out;
}

} // namespace kcm
