#include "mem/traps.hh"

#include <sstream>

namespace kcm
{

const char *
trapKindName(TrapKind kind)
{
    switch (kind) {
      case TrapKind::ZoneViolation:   return "zone_violation";
      case TrapKind::TypeViolation:   return "type_violation";
      case TrapKind::WriteProtection: return "write_protection";
      case TrapKind::PageFault:       return "page_fault";
      case TrapKind::BadInstruction:  return "bad_instruction";
      case TrapKind::StackOverflow:   return "stack_overflow";
      case TrapKind::Abort:           return "abort";
    }
    return "unknown_trap";
}

std::string
TrapInfo::toString() const
{
    std::ostringstream os;
    os << trapKindName(kind) << " at pc=0x" << std::hex << pc;
    if (faultAddr)
        os << " addr=0x" << faultAddr;
    os << std::dec << " cycle=" << cycle << " instr=" << instructions;
    if (!message.empty())
        os << ": " << message;
    return os.str();
}

std::string
trapDiagnosis(const TrapInfo &info)
{
    std::string out = trapIsResource(info.kind) ? "resource_error("
                                                : "machine_trap(";
    out += trapKindName(info.kind);
    out += "): ";
    out += info.toString();
    return out;
}

} // namespace kcm
