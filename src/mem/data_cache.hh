/**
 * @file
 * The KCM data cache (§3.2.4).
 *
 * A logical (virtually indexed/tagged) store-in cache with a line size
 * of one word. It is direct mapped but split into 8 sections of 1K
 * words each, the section being selected by the zone field of the
 * address word — so different stacks can never collide in the cache,
 * which fixes the multi-stack collision problem of a plain
 * direct-mapped cache. A plain (non-zone-indexed) mode is provided for
 * the §3.2.4 collision experiment and the ablation benches.
 *
 * Because the line size is one word, a write miss allocates without a
 * memory fetch: items pushed on stacks and never read again cost no
 * memory-read traffic until eviction (this is why the paper chose
 * store-in given Prolog's ~1:1 read/write mix).
 */

#ifndef KCM_MEM_DATA_CACHE_HH
#define KCM_MEM_DATA_CACHE_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "isa/word.hh"
#include "mem/main_memory.hh"
#include "mem/mmu.hh"

namespace kcm
{

struct DataCacheConfig
{
    unsigned sectionWords = 1024; ///< words per section (power of two)
    unsigned sections = 8;        ///< number of sections
    bool zoneIndexed = true;      ///< section selected by zone field
    bool enabled = true;          ///< disabled: every access to memory
};

/** Virtually-indexed write-back data cache. */
class DataCache
{
  public:
    DataCache(Mmu &mmu, MainMemory &memory,
              const DataCacheConfig &config = {});

    /**
     * Read the word addressed by @p addr_word.
     * @param penalty_cycles incremented by miss/write-back penalties
     *        (a hit costs the base 80 ns access charged by the caller).
     * Hit path inline; misses take the cold out-of-line fill path.
     */
    Word
    read(Word addr_word, unsigned &penalty_cycles)
    {
        if (config_.enabled) [[likely]] {
            Cell &cell = cells_[indexOf(addr_word)];
            if (cell.valid && cell.vaddr == addr_word.addr()) [[likely]] {
                ++readHits;
                return Word(cell.data);
            }
        }
        return readMiss(addr_word, penalty_cycles);
    }

    /** Write @p value at @p addr_word (write-allocate, no fetch).
     *  Hit path inline; allocation/eviction out of line. */
    void
    write(Word addr_word, Word value, unsigned &penalty_cycles)
    {
        if (config_.enabled) [[likely]] {
            Cell &cell = cells_[indexOf(addr_word)];
            if (cell.valid && cell.vaddr == addr_word.addr()) [[likely]] {
                ++writeHits;
                cell.data = value.raw();
                cell.dirty = true;
                return;
            }
        }
        writeMiss(addr_word, value, penalty_cycles);
    }

    /** Write every dirty cell back to memory. */
    void flushAll();

    /**
     * Untimed, statistics-free probe: returns true and fills @p out if
     * the word at @p addr_word is present in the cache.
     */
    bool probe(Word addr_word, Word &out) const;

    /**
     * Untimed coherent poke: updates the cache cell if the address is
     * resident, otherwise writes physical memory directly. For loaders
     * and debuggers only.
     */
    void pokeCoherent(Word addr_word, Word value);

    /** Drop all cache contents without writing back (tests). */
    void invalidateAll();

    const DataCacheConfig &config() const { return config_; }

    StatGroup &stats() { return stats_; }

    Counter readHits;
    Counter readMisses;
    Counter writeHits;
    Counter writeMisses;
    Counter writeBacks;

    /** Total accesses / hit ratio helpers for the cache benches. */
    uint64_t
    totalAccesses() const
    {
        return readHits.value() + readMisses.value() + writeHits.value() +
               writeMisses.value();
    }

    double
    hitRatio() const
    {
        uint64_t total = totalAccesses();
        if (!total)
            return 1.0;
        return double(readHits.value() + writeHits.value()) / double(total);
    }

  private:
    friend struct SnapshotAccess;

    struct Cell
    {
        bool valid = false;
        bool dirty = false;
        Addr vaddr = 0; ///< full virtual word address of the occupant
        uint64_t data = 0;
    };

    /** Cache index of @p addr_word under the configured policy. */
    size_t
    indexOf(Word addr_word) const
    {
        Addr a = addr_word.addr();
        if (config_.zoneIndexed) [[likely]] {
            unsigned section =
                static_cast<unsigned>(addr_word.zone()) % config_.sections;
            return size_t(section) * config_.sectionWords +
                   (a & (config_.sectionWords - 1));
        }
        size_t total = cells_.size();
        return a & (total - 1);
    }

    /** Cold path of read(): cache disabled or miss. */
    Word readMiss(Word addr_word, unsigned &penalty_cycles);

    /** Cold path of write(): cache disabled or allocate-on-miss. */
    void writeMiss(Word addr_word, Word value, unsigned &penalty_cycles);

    /** Evict @p cell if dirty, adding the write-back penalty. */
    void evict(Cell &cell, unsigned &penalty_cycles);

    Mmu &mmu_;
    MainMemory &memory_;
    DataCacheConfig config_;
    std::vector<Cell> cells_;
    StatGroup stats_;
};

} // namespace kcm

#endif // KCM_MEM_DATA_CACHE_HH
