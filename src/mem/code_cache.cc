#include "mem/code_cache.hh"

#include "base/logging.hh"

namespace kcm
{

CodeCache::CodeCache(Mmu &mmu, MainMemory &memory,
                     const CodeCacheConfig &config)
    : mmu_(mmu), memory_(memory), config_(config),
      cells_(config.sizeWords), stats_("icache")
{
    if (config_.sizeWords == 0 ||
        (config_.sizeWords & (config_.sizeWords - 1))) {
        fatal("code cache size must be a power of two");
    }
    stats_.add("readHits", readHits);
    stats_.add("readMisses", readMisses);
    stats_.add("writes", writes);
}

void
CodeCache::fill(Addr addr, uint64_t data)
{
    Cell &cell = cells_[addr & (config_.sizeWords - 1)];
    cell.valid = true;
    cell.vaddr = addr;
    cell.data = data;
}

uint64_t
CodeCache::readMiss(Addr addr, unsigned &penalty_cycles)
{
    if (!config_.enabled) {
        ++readMisses;
        PhysAddr pa = mmu_.translate(AddrSpace::Code, addr, false);
        uint64_t raw = 0;
        penalty_cycles += memory_.readBurst(pa, &raw, 1);
        return raw;
    }
    ++readMisses;

    // Fetch the missing word plus a few sequential words using the
    // memory's page mode. The prefetch must not cross a page boundary.
    unsigned count = config_.prefetchWords ? config_.prefetchWords : 1;
    uint32_t page_remaining = pageSizeWords - (addr & (pageSizeWords - 1));
    if (count > page_remaining)
        count = page_remaining;

    PhysAddr pa = mmu_.translate(AddrSpace::Code, addr, false);
    std::vector<uint64_t> buffer(count);
    penalty_cycles += memory_.readBurst(pa, buffer.data(), count);
    for (unsigned i = 0; i < count; ++i)
        fill(addr + i, buffer[i]);
    return buffer[0];
}

void
CodeCache::write(Addr addr, uint64_t value, unsigned &penalty_cycles)
{
    ++writes;
    if (config_.enabled)
        fill(addr, value);
    PhysAddr pa = mmu_.translate(AddrSpace::Code, addr, true);
    penalty_cycles += memory_.writeBurst(pa, &value, 1);
}

void
CodeCache::invalidateAll()
{
    for (auto &cell : cells_)
        cell.valid = false;
}

} // namespace kcm
