/**
 * @file
 * Deterministic fault injection into the memory system.
 *
 * A FaultPlan is a cycle-ordered script of faults the machine applies
 * at instruction boundaries: page-fault arming in the MMU, zone-limit
 * tightening in the zone checker, and tagged-word corruption in data
 * memory. The plan is consulted in the shared per-step prologue
 * (Machine::fetchDecoded), so both execution cores apply every fault
 * at the identical simulated cycle — which is what lets the test
 * suite assert that the oracle and threaded cores trap identically on
 * every fault path.
 */

#ifndef KCM_MEM_FAULT_PLAN_HH
#define KCM_MEM_FAULT_PLAN_HH

#include <cstdint>
#include <vector>

#include "isa/word.hh"

namespace kcm
{

/** What to break. */
enum class FaultKind
{
    /** Arm the MMU to raise an unrecoverable PageFault on its next
     *  translation. */
    InjectPageFault,
    /** Clamp a zone's hard end to @c limit (a later access beyond it
     *  raises ZoneViolation; clamping a governed zone below its soft
     *  limit exercises the StackOverflow path instead). */
    TightenZone,
    /** Overwrite the data word at @c addr with raw bits @c raw —
     *  e.g. a float where an address is expected, provoking a
     *  TypeViolation on the next dereference through it. */
    CorruptWord,
};

/** One scripted fault. */
struct FaultAction
{
    uint64_t cycle = 0; ///< apply when cycles() first reaches this
    FaultKind kind = FaultKind::InjectPageFault;
    Zone zone = Zone::Global; ///< TightenZone target
    Addr limit = 0;           ///< TightenZone: new end address
    Addr addr = 0;            ///< CorruptWord target address
    uint64_t raw = 0;         ///< CorruptWord replacement bits
};

/** A cycle-ordered fault script (actions must be sorted by cycle;
 *  equal cycles apply in list order). */
struct FaultPlan
{
    std::vector<FaultAction> actions;

    bool empty() const { return actions.empty(); }
};

} // namespace kcm

#endif // KCM_MEM_FAULT_PLAN_HH
