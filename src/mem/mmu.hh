/**
 * @file
 * Address translation (§3.2.5).
 *
 * A simple RAM holds the entire page table (no TLB): one entry per
 * virtual page for each of the two address spaces (code and data,
 * §3.2.1). Pages are 16K words (address bits 27..14 select the page).
 * Each entry holds 5 status bits plus an 11-bit physical page number.
 *
 * KCM's host serves page faults; here, the "host" is a demand
 * allocator handing out physical pages on first touch.
 */

#ifndef KCM_MEM_MMU_HH
#define KCM_MEM_MMU_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "isa/word.hh"
#include "mem/main_memory.hh"
#include "mem/traps.hh"

namespace kcm
{

/** The two virtual address spaces (§3.2.1). */
enum class AddrSpace : uint8_t
{
    Code = 0,
    Data = 1,
};

/** log2 of the page size in words (16K words). */
constexpr unsigned pageShift = 14;
constexpr uint32_t pageSizeWords = 1u << pageShift;
/** Virtual pages per address space (bits 27..14). */
constexpr uint32_t numVirtualPages = 1u << 14;

/** One 16-bit page table entry: 5 status bits + 11-bit physical page. */
struct PageEntry
{
    uint16_t raw = 0;

    bool valid() const { return raw & 0x8000; }
    bool writable() const { return raw & 0x4000; }
    bool dirty() const { return raw & 0x2000; }
    bool referenced() const { return raw & 0x1000; }
    bool reserved() const { return raw & 0x0800; }
    uint16_t physPage() const { return raw & 0x07FF; }

    void setValid(bool v) { raw = v ? raw | 0x8000 : raw & ~0x8000; }
    void setWritable(bool v) { raw = v ? raw | 0x4000 : raw & ~0x4000; }
    void setDirty(bool v) { raw = v ? raw | 0x2000 : raw & ~0x2000; }
    void setReferenced(bool v) { raw = v ? raw | 0x1000 : raw & ~0x1000; }
    void setPhysPage(uint16_t p) { raw = (raw & ~0x07FF) | (p & 0x07FF); }
};

/**
 * The memory management unit: page-table RAM plus a demand allocator
 * of physical pages.
 */
class Mmu
{
  public:
    explicit Mmu(MainMemory &memory);

    /**
     * Translate @p vaddr in @p space, demand-allocating a physical
     * page on first touch (this models the host paging server).
     * Marks the page referenced (and dirty on writes).
     *
     * The hot case — valid, writable page, no injected fault — runs
     * inline; first touches and faults take the out-of-line slow
     * path.
     */
    PhysAddr translate(AddrSpace space, Addr vaddr, bool is_write)
    {
        ++translations;
        if (!injectFault_ && !(vaddr & ~addrMask)) [[likely]] {
            PageEntry &pe =
                table_[static_cast<uint32_t>(space) * numVirtualPages +
                       (vaddr >> pageShift)];
            if (pe.valid() && (!is_write || pe.writable())) [[likely]] {
                pe.raw |= is_write ? 0x3000 : 0x1000; // referenced+dirty
                return (PhysAddr(pe.physPage()) << pageShift) |
                       (vaddr & (pageSizeWords - 1));
            }
        }
        return translateSlow(space, vaddr, is_write);
    }

    /** Direct page-table manipulation (used by the language system to
     *  move batch-compiled code pages from data to code space,
     *  §3.2.1). */
    PageEntry &entry(AddrSpace space, uint32_t virtual_page);

    /**
     * Re-attach the physical page backing @p data_page in the data
     * space to @p code_page in the code space, invalidating the data
     * mapping (batch compilation hand-over, §3.2.1).
     */
    void attachDataPageToCode(uint32_t data_page, uint32_t code_page);

    /** Number of physical pages handed out so far. */
    uint32_t allocatedPages() const { return nextPhysPage_; }

    /** Fault injection: the next translate() raises an unrecoverable
     *  PageFault (one-shot; the FaultPlan machinery arms this at a
     *  chosen cycle). */
    void injectPageFault() { injectFault_ = true; }

    StatGroup &stats() { return stats_; }

    Counter translations;
    Counter demandFaults;

  private:
    friend struct SnapshotAccess;

    uint16_t allocPhysPage();

    [[gnu::cold, gnu::noinline]] PhysAddr
    translateSlow(AddrSpace space, Addr vaddr, bool is_write);

    MainMemory &memory_;
    std::vector<PageEntry> table_; // [space][page] flattened
    uint16_t nextPhysPage_ = 0;
    bool injectFault_ = false;
    StatGroup stats_;
};

} // namespace kcm

#endif // KCM_MEM_MMU_HH
