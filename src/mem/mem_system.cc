#include "mem/mem_system.hh"

namespace kcm
{

MemSystem::MemSystem(const MemSystemConfig &config)
    : config_(config), stats_("mem")
{
    memory_ = std::make_unique<MainMemory>(config_.memoryWords);
    mmu_ = std::make_unique<Mmu>(*memory_);
    zoneChecker_ = std::make_unique<ZoneChecker>();
    zoneChecker_->setEnabled(config_.zoneCheckEnabled);
    installStandardZones(*zoneChecker_, config_.layout);
    dataCache_ =
        std::make_unique<DataCache>(*mmu_, *memory_, config_.dataCache);
    codeCache_ =
        std::make_unique<CodeCache>(*mmu_, *memory_, config_.codeCache);

    stats_.addChild(memory_->stats());
    stats_.addChild(mmu_->stats());
    stats_.addChild(zoneChecker_->stats());
    stats_.addChild(dataCache_->stats());
    stats_.addChild(codeCache_->stats());
}

void
MemSystem::writeCode(Addr addr, uint64_t value, unsigned &penalty_cycles)
{
    codeCache_->write(addr, value, penalty_cycles);
}

namespace
{

/** Zone of a data address under a layout (for cache-section lookup). */
Zone
zoneOfDataAddr(const DataLayout &layout, Addr addr)
{
    if (addr >= layout.globalStart && addr < layout.globalEnd)
        return Zone::Global;
    if (addr >= layout.localStart && addr < layout.localEnd)
        return Zone::Local;
    if (addr >= layout.controlStart && addr < layout.controlEnd)
        return Zone::Control;
    if (addr >= layout.trailStart && addr < layout.trailEnd)
        return Zone::TrailZ;
    if (addr >= layout.staticStart && addr < layout.staticEnd)
        return Zone::Static;
    return Zone::None;
}

} // namespace

Word
MemSystem::peekData(Addr addr)
{
    // Honor dirty cache contents: probe the cache first (untimed,
    // statistics-free), then fall back to physical memory.
    Word addr_word =
        Word::makeDataPtr(zoneOfDataAddr(config_.layout, addr), addr);
    Word out;
    if (dataCache_->probe(addr_word, out))
        return out;
    PhysAddr pa = mmu_->translate(AddrSpace::Data, addr, false);
    return Word(memory_->peek(pa));
}

void
MemSystem::pokeData(Addr addr, Word value)
{
    Word addr_word =
        Word::makeDataPtr(zoneOfDataAddr(config_.layout, addr), addr);
    dataCache_->pokeCoherent(addr_word, value);
}

uint64_t
MemSystem::peekCode(Addr addr)
{
    unsigned penalty = 0;
    return codeCache_->read(addr, penalty);
}

void
MemSystem::pokeCode(Addr addr, uint64_t value)
{
    unsigned penalty = 0;
    codeCache_->write(addr, value, penalty);
}

} // namespace kcm
