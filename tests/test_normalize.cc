/**
 * @file
 * Clause-normalization and operator-table unit tests.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "compiler/normalize.hh"
#include "kcm/kcm.hh"
#include "prolog/writer.hh"

using namespace kcm;

namespace
{

NormProgram
normalize(const std::string &source)
{
    NormProgram program;
    normalizeProgram(parseProgramText(source), program);
    return program;
}

} // namespace

TEST(Normalize, FactsHaveNoGoals)
{
    NormProgram program = normalize("p(a). p(b).");
    Functor p{internAtom("p"), 1};
    ASSERT_EQ(program.preds.at(p).size(), 2u);
    EXPECT_TRUE(program.preds.at(p)[0].goals.empty());
}

TEST(Normalize, ConjunctionFlattens)
{
    NormProgram program = normalize("p :- a, b, c, d.");
    Functor p{internAtom("p"), 0};
    EXPECT_EQ(program.preds.at(p)[0].goals.size(), 4u);
}

TEST(Normalize, PredicatesKeepDefinitionOrder)
{
    NormProgram program = normalize("z(1). a(2). m(3). a(4).");
    ASSERT_EQ(program.order.size(), 3u);
    EXPECT_EQ(atomText(program.order[0].name), "z");
    EXPECT_EQ(atomText(program.order[1].name), "a");
    EXPECT_EQ(atomText(program.order[2].name), "m");
    // The second a/1 clause joined the first.
    EXPECT_EQ(program.preds.at(program.order[1]).size(), 2u);
}

TEST(Normalize, DisjunctionBecomesAuxiliary)
{
    NormProgram program = normalize("p(X) :- (X = 1 ; X = 2).");
    ASSERT_EQ(program.auxiliaries.size(), 1u);
    const auto &aux_clauses = program.preds.at(program.auxiliaries[0]);
    ASSERT_EQ(aux_clauses.size(), 2u);
    // The auxiliary receives the shared variable.
    EXPECT_EQ(program.auxiliaries[0].arity, 1u);
}

TEST(Normalize, IfThenElseBecomesTwoClausesWithCut)
{
    NormProgram program = normalize("p(X, R) :- (X > 0 -> R = p ; R = n).");
    ASSERT_EQ(program.auxiliaries.size(), 1u);
    const auto &clauses = program.preds.at(program.auxiliaries[0]);
    ASSERT_EQ(clauses.size(), 2u);
    // First clause: condition, !, then.
    ASSERT_EQ(clauses[0].goals.size(), 3u);
    EXPECT_EQ(writeTerm(clauses[0].goals[1]), "!");
}

TEST(Normalize, NegationBecomesCutFail)
{
    NormProgram program = normalize("p :- \\+ q.\nq.\n");
    ASSERT_EQ(program.auxiliaries.size(), 1u);
    const auto &clauses = program.preds.at(program.auxiliaries[0]);
    ASSERT_EQ(clauses.size(), 2u);
    ASSERT_EQ(clauses[0].goals.size(), 3u);
    EXPECT_EQ(writeTerm(clauses[0].goals[0]), "q");
    EXPECT_EQ(writeTerm(clauses[0].goals[1]), "!");
    EXPECT_EQ(writeTerm(clauses[0].goals[2]), "fail");
    EXPECT_EQ(writeTerm(clauses[1].goals[0]), "true");
}

TEST(Normalize, NestedControlStructures)
{
    NormProgram program =
        normalize("p(X) :- (q(X) ; (r(X) ; s(X))).\nq(_). r(_). s(_).\n");
    // The inner disjunction spawns its own auxiliary.
    EXPECT_EQ(program.auxiliaries.size(), 2u);
}

TEST(Normalize, VariableGoalBecomesCall)
{
    NormProgram program = normalize("p(G) :- G.");
    Functor p{internAtom("p"), 1};
    const auto &goals = program.preds.at(p)[0].goals;
    ASSERT_EQ(goals.size(), 1u);
    EXPECT_EQ(atomText(goals[0]->functorName()), "call");
}

TEST(Normalize, NonCallableGoalIsFatal)
{
    EXPECT_THROW(normalize("p :- 42."), FatalError);
}

TEST(Normalize, NonCallableHeadIsFatal)
{
    EXPECT_THROW(normalize("42."), FatalError);
}

TEST(Normalize, DirectivesAreSkipped)
{
    setLoggingEnabled(false);
    NormProgram program = normalize(":- some_directive.\np(a).\n");
    setLoggingEnabled(true);
    EXPECT_EQ(program.order.size(), 1u);
}

TEST(Operators, StandardTablePreloaded)
{
    OperatorTable ops;
    auto neck = ops.infix(internAtom(":-"));
    ASSERT_TRUE(neck.has_value());
    EXPECT_EQ(neck->priority, 1200);
    EXPECT_EQ(neck->type, OpType::XFX);

    auto plus = ops.infix(internAtom("+"));
    EXPECT_EQ(plus->priority, 500);
    EXPECT_EQ(plus->type, OpType::YFX);

    auto neg = ops.prefix(internAtom("-"));
    EXPECT_EQ(neg->priority, 200);
    EXPECT_EQ(neg->type, OpType::FY);
}

TEST(Operators, DefineAndRemove)
{
    OperatorTable ops;
    AtomId like = internAtom("likes");
    EXPECT_FALSE(ops.infix(like).has_value());
    ops.define(700, OpType::XFX, like);
    EXPECT_TRUE(ops.infix(like).has_value());
    ops.define(0, OpType::XFX, like); // priority 0 removes
    EXPECT_FALSE(ops.infix(like).has_value());
}

TEST(Operators, PrefixAndInfixCoexist)
{
    OperatorTable ops;
    AtomId minus = internAtom("-");
    EXPECT_TRUE(ops.prefix(minus).has_value());
    EXPECT_TRUE(ops.infix(minus).has_value());
    EXPECT_TRUE(ops.isOperator(minus));
}

TEST(Operators, ParseTypeNames)
{
    EXPECT_EQ(*OperatorTable::parseType("xfx"), OpType::XFX);
    EXPECT_EQ(*OperatorTable::parseType("yfx"), OpType::YFX);
    EXPECT_EQ(*OperatorTable::parseType("fy"), OpType::FY);
    EXPECT_FALSE(OperatorTable::parseType("zfz").has_value());
}

TEST(Prefetch, SequentialRateHighOnStraightLineCode)
{
    KcmOptions options;
    KcmSystem system(options);
    system.consult("fact(a1, b). fact2(c, d).");
    system.query("fact(a1, B), fact2(C, d)");
    const PrefetchUnit &prefetch = system.machine().prefetch();
    EXPECT_GT(prefetch.sequentialFetches.value(), 0u);
    EXPECT_GT(prefetch.pipelineBreaks.value(), 0u); // the calls
}

TEST(Prefetch, BranchyCodeBreaksMore)
{
    auto rate = [](const char *program, const char *goal) {
        KcmSystem system;
        system.consult(program);
        system.query(goal);
        return system.machine().prefetch().sequentialRate();
    };
    // Straight-line head unification vs choice-point churn.
    double straight = rate(
        "big(a,b,c,d,e,f,g,h).", "big(a,b,c,d,e,f,g,h)");
    double churny = rate(
        "p(1). p(2). p(3). p(4). p(5).\nq :- p(X), X > 4.", "q");
    EXPECT_GT(straight, churny);
}
