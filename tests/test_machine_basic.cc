/**
 * @file
 * End-to-end machine tests: compile small programs and run queries on
 * the simulated KCM.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

QueryResult
runQuery(const std::string &program, const std::string &goal,
         size_t max_solutions = 1)
{
    KcmOptions options;
    options.maxSolutions = max_solutions;
    KcmSystem system(options);
    if (!program.empty())
        system.consult(program);
    return system.query(goal);
}

std::string
firstBinding(const QueryResult &result)
{
    if (result.solutions.empty())
        return "<no solution>";
    return result.solutions[0].toString();
}

} // namespace

TEST(MachineBasic, FactSucceeds)
{
    auto result = runQuery("likes(mary, wine).", "likes(mary, wine)");
    EXPECT_TRUE(result.success);
}

TEST(MachineBasic, FactFails)
{
    auto result = runQuery("likes(mary, wine).", "likes(mary, beer)");
    EXPECT_FALSE(result.success);
}

TEST(MachineBasic, FactBindsVariable)
{
    auto result = runQuery("likes(mary, wine).", "likes(mary, X)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "X = wine");
}

TEST(MachineBasic, ConstantsOfAllKinds)
{
    auto result = runQuery("holds(atom_k, 42, 2.5, []).",
                           "holds(A, B, C, D)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "A = atom_k, B = 42, C = 2.5, D = []");
}

TEST(MachineBasic, StructureInHead)
{
    auto result = runQuery("age(point(3,4), 7).", "age(point(X,Y), Z)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "X = 3, Y = 4, Z = 7");
}

TEST(MachineBasic, BuildStructureInQuery)
{
    auto result = runQuery("same(X, X).", "same(f(g(1),h), R)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "R = f(g(1),h)");
}

TEST(MachineBasic, NestedStructureUnification)
{
    auto result = runQuery("deep(f(g(h(k(42))))).", "deep(f(g(h(k(X)))))");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "X = 42");
}

TEST(MachineBasic, ListUnification)
{
    auto result = runQuery("head_tail([H|T], H, T).",
                           "head_tail([1,2,3], H, T)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "H = 1, T = [2,3]");
}

TEST(MachineBasic, AppendForward)
{
    const char *program =
        "append([], L, L).\n"
        "append([H|T], L, [H|R]) :- append(T, L, R).\n";
    auto result = runQuery(program, "append([1,2], [3,4], X)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "X = [1,2,3,4]");
}

TEST(MachineBasic, AppendBackwardEnumerates)
{
    const char *program =
        "append([], L, L).\n"
        "append([H|T], L, [H|R]) :- append(T, L, R).\n";
    auto result = runQuery(program, "append(X, Y, [1,2])", 10);
    ASSERT_EQ(result.solutions.size(), 3u);
    EXPECT_EQ(result.solutions[0].toString(), "X = [], Y = [1,2]");
    EXPECT_EQ(result.solutions[1].toString(), "X = [1], Y = [2]");
    EXPECT_EQ(result.solutions[2].toString(), "X = [1,2], Y = []");
}

TEST(MachineBasic, BacktrackingThroughFacts)
{
    const char *program = "color(red). color(green). color(blue).";
    auto result = runQuery(program, "color(C)", 10);
    ASSERT_EQ(result.solutions.size(), 3u);
    EXPECT_EQ(result.solutions[0].toString(), "C = red");
    EXPECT_EQ(result.solutions[2].toString(), "C = blue");
}

TEST(MachineBasic, SharedVariablesInQuery)
{
    auto result = runQuery("eq(X, X).", "eq(f(A, b), f(c, B))");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "A = c, B = b");
}

TEST(MachineBasic, OccursFreeCircularAvoided)
{
    // p(X, f(X)) with X = f(X) would loop in occurs-check-free
    // unification if exported naively; we just check a ground case.
    auto result = runQuery("p(a).", "p(a)");
    EXPECT_TRUE(result.success);
}

TEST(MachineBasic, ConjunctionInBody)
{
    const char *program =
        "parent(tom, bob). parent(bob, ann).\n"
        "grandparent(X, Z) :- parent(X, Y), parent(Y, Z).\n";
    auto result = runQuery(program, "grandparent(tom, Who)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "Who = ann");
}

TEST(MachineBasic, DeepBacktrackingAcrossGoals)
{
    const char *program =
        "p(1). p(2). p(3).\n"
        "q(2). q(3).\n"
        "r(3).\n"
        "find(X) :- p(X), q(X), r(X).\n";
    auto result = runQuery(program, "find(X)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "X = 3");
}

TEST(MachineBasic, CutCommitsToFirstSolution)
{
    const char *program =
        "p(1). p(2).\n"
        "first(X) :- p(X), !.\n";
    auto result = runQuery(program, "first(X)", 10);
    ASSERT_EQ(result.solutions.size(), 1u);
    EXPECT_EQ(result.solutions[0].toString(), "X = 1");
}

TEST(MachineBasic, NeckCutSelectsClause)
{
    const char *program =
        "max(X, Y, X) :- X >= Y, !.\n"
        "max(_, Y, Y).\n";
    auto r1 = runQuery(program, "max(3, 2, M)", 10);
    ASSERT_EQ(r1.solutions.size(), 1u);
    EXPECT_EQ(r1.solutions[0].toString(), "M = 3");
    auto r2 = runQuery(program, "max(2, 5, M)", 10);
    ASSERT_EQ(r2.solutions.size(), 1u);
    EXPECT_EQ(r2.solutions[0].toString(), "M = 5");
}

TEST(MachineBasic, FailForcesBacktracking)
{
    const char *program =
        "p(1). p(2).\n"
        "test(X) :- p(X), X > 1.\n";
    auto result = runQuery(program, "test(X)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "X = 2");
}

TEST(MachineBasic, IntegerArithmetic)
{
    auto result = runQuery("", "X is 3 + 4 * 5");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "X = 23");
}

TEST(MachineBasic, ArithmeticOnBoundVars)
{
    const char *program = "double(X, Y) :- Y is X * 2.";
    auto result = runQuery(program, "double(21, R)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "R = 42");
}

TEST(MachineBasic, DivisionAndMod)
{
    auto result = runQuery("", "X is 17 // 5, Y is 17 mod 5");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "X = 3, Y = 2");
}

TEST(MachineBasic, NegativeNumbers)
{
    auto result = runQuery("", "X is -3 + 1");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "X = -2");
}

TEST(MachineBasic, Comparisons)
{
    EXPECT_TRUE(runQuery("", "1 < 2").success);
    EXPECT_FALSE(runQuery("", "2 < 1").success);
    EXPECT_TRUE(runQuery("", "2 >= 2").success);
    EXPECT_TRUE(runQuery("", "3 =:= 3").success);
    EXPECT_TRUE(runQuery("", "3 =\\= 4").success);
    EXPECT_FALSE(runQuery("", "3 =\\= 3").success);
}

TEST(MachineBasic, ExplicitUnifyGoal)
{
    auto result = runQuery("", "X = f(Y), Y = 3");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "X = f(3), Y = 3");
}

TEST(MachineBasic, TrueAndFail)
{
    EXPECT_TRUE(runQuery("", "true").success);
    EXPECT_FALSE(runQuery("", "fail").success);
}

TEST(MachineBasic, RecursionWithAccumulator)
{
    const char *program =
        "len([], N, N).\n"
        "len([_|T], Acc, N) :- Acc1 is Acc + 1, len(T, Acc1, N).\n";
    auto result = runQuery(program, "len([a,b,c,d,e], 0, N)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "N = 5");
}

TEST(MachineBasic, NaiveReverse)
{
    const char *program =
        "app([], L, L).\n"
        "app([H|T], L, [H|R]) :- app(T, L, R).\n"
        "nrev([], []).\n"
        "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n";
    auto result = runQuery(program, "nrev([1,2,3,4,5], R)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "R = [5,4,3,2,1]");
}

TEST(MachineBasic, DisjunctionInBody)
{
    const char *program = "p(X) :- (X = a ; X = b).";
    auto result = runQuery(program, "p(X)", 10);
    ASSERT_EQ(result.solutions.size(), 2u);
    EXPECT_EQ(result.solutions[0].toString(), "X = a");
    EXPECT_EQ(result.solutions[1].toString(), "X = b");
}

TEST(MachineBasic, IfThenElse)
{
    const char *program =
        "sign(X, pos) :- (X > 0 -> true ; fail).\n"
        "classify(X, S) :- (X > 0 -> S = pos ; S = nonpos).\n";
    EXPECT_TRUE(runQuery(program, "sign(5, pos)").success);
    auto result = runQuery(program, "classify(-3, S)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "S = nonpos");
}

TEST(MachineBasic, NegationAsFailure)
{
    const char *program = "p(1).";
    EXPECT_TRUE(runQuery(program, "\\+ p(2)").success);
    EXPECT_FALSE(runQuery(program, "\\+ p(1)").success);
}

TEST(MachineBasic, OutputCapture)
{
    auto result = runQuery("", "write(hello), nl, write([1,2,3])");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.output, "hello\n[1,2,3]");
}

TEST(MachineBasic, InferenceCounting)
{
    // append on a 2-element list: 3 append inferences.
    const char *program =
        "append([], L, L).\n"
        "append([H|T], L, [H|R]) :- append(T, L, R).\n";
    auto result = runQuery(program, "append([1,2], [3], X)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.inferences, 3u);
}

TEST(MachineBasic, CyclesAdvance)
{
    auto result = runQuery("p(a).", "p(a)");
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.instructions, 0u);
    EXPECT_NEAR(result.seconds, double(result.cycles) * 80e-9, 1e-12);
}

TEST(MachineBasic, UndefinedPredicateFails)
{
    auto result = runQuery("p(a).", "q(a)");
    EXPECT_FALSE(result.success);
}

TEST(MachineBasic, LastCallOptimizationDeepRecursion)
{
    // 20000-deep deterministic recursion must not exhaust the local
    // stack thanks to LCO.
    const char *program =
        "count(N) :- N > 0, M is N - 1, count(M).\n"
        "count(0).\n";
    auto result = runQuery(program, "count(20000)");
    EXPECT_TRUE(result.success);
}

TEST(MachineBasic, VarAndNonvar)
{
    EXPECT_TRUE(runQuery("", "var(_)").success);
    EXPECT_FALSE(runQuery("", "X = 1, var(X)").success);
    EXPECT_TRUE(runQuery("", "X = 1, nonvar(X)").success);
}

TEST(MachineBasic, StructuralEquality)
{
    EXPECT_TRUE(runQuery("", "f(1,X) == f(1,X)").success);
    EXPECT_FALSE(runQuery("", "f(1,X) == f(1,Y)").success);
    EXPECT_TRUE(runQuery("", "f(1,X) \\== f(1,Y)").success);
}

TEST(MachineBasic, FunctorBuiltin)
{
    auto result = runQuery("", "functor(f(a,b,c), N, A)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "N = f, A = 3");
    auto result2 = runQuery("", "functor(T, g, 2)");
    ASSERT_TRUE(result2.success);
    EXPECT_EQ(result2.solutions[0].bindings[0].first, "T");
}

TEST(MachineBasic, ArgBuiltin)
{
    auto result = runQuery("", "arg(2, f(a,b,c), X)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "X = b");
}

TEST(MachineBasic, UnivBuiltin)
{
    auto result = runQuery("", "f(a,b) =.. L");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "L = [f,a,b]");
    auto result2 = runQuery("", "T =.. [g, 1, 2]");
    ASSERT_TRUE(result2.success);
    EXPECT_EQ(firstBinding(result2), "T = g(1,2)");
}

TEST(MachineBasic, CallMetaBuiltin)
{
    const char *program = "p(42).";
    auto result = runQuery(program, "G = p(X), call(G)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(firstBinding(result), "G = p(42), X = 42");
}

TEST(MachineBasic, GenericArithmeticMode)
{
    KcmOptions options;
    options.compiler.integerArithmetic = false;
    KcmSystem system(options);
    system.consult("double(X, Y) :- Y is X * 2.");
    auto result = system.query("double(4, R)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.solutions[0].toString(), "R = 8");
}

TEST(MachineBasic, StandardWamModeMatchesResults)
{
    // With shallow backtracking disabled the machine must compute the
    // same answers (only timing/stats differ).
    KcmOptions options;
    options.machine.shallowBacktracking = false;
    options.maxSolutions = 10;
    KcmSystem system(options);
    system.consult("p(1). p(2). p(3).");
    auto result = system.query("p(X), X > 1");
    ASSERT_EQ(result.solutions.size(), 2u);
    EXPECT_EQ(result.solutions[0].toString(), "X = 2");
    EXPECT_EQ(result.solutions[1].toString(), "X = 3");
}

TEST(MachineBasic, ShallowAvoidsChoicePoints)
{
    // Deterministic selection by guard: with shallow backtracking the
    // machine should create far fewer choice points than standard WAM.
    const char *program =
        "part([], _, [], []).\n"
        "part([X|L], Y, [X|L1], L2) :- X =< Y, part(L, Y, L1, L2).\n"
        "part([X|L], Y, L1, [X|L2]) :- X > Y, part(L, Y, L1, L2).\n";
    const char *goal = "part([3,1,4,1,5,9,2,6], 4, A, B)";

    KcmOptions shallow_options;
    KcmSystem shallow_system(shallow_options);
    shallow_system.consult(program);
    auto shallow_result = shallow_system.query(goal);
    ASSERT_TRUE(shallow_result.success);
    uint64_t shallow_cps =
        shallow_system.machine().choicePointsCreated.value();

    KcmOptions wam_options;
    wam_options.machine.shallowBacktracking = false;
    KcmSystem wam_system(wam_options);
    wam_system.consult(program);
    auto wam_result = wam_system.query(goal);
    ASSERT_TRUE(wam_result.success);
    uint64_t wam_cps = wam_system.machine().choicePointsCreated.value();

    EXPECT_EQ(shallow_result.solutions[0].toString(),
              wam_result.solutions[0].toString());
    EXPECT_LT(shallow_cps, wam_cps);
}
