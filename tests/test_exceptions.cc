/**
 * @file
 * ISO exception handling (catch/3, throw/1) across all three
 * executors: the predecoded token-threaded core, the decode-per-step
 * oracle core, and the baseline reference interpreter.
 *
 * The two simulator cores must agree bit-for-bit on every simulated
 * metric (cycles, instructions, inferences) for every exception
 * scenario — delivery is ordinary backtracking hardware work, so it is
 * modelled, not magic. The baseline must agree on the observable
 * Prolog semantics: solutions, output, halt status, and the formatted
 * error term of an uncaught ball.
 */

#include <cctype>

#include <gtest/gtest.h>

#include "baseline/interp.hh"
#include "kcm/kcm.hh"
#include "prolog/parser.hh"
#include "prolog/writer.hh"

using namespace kcm;

namespace
{

/** Normalize variable numbering (_123 -> _V) for comparisons. */
std::string
stripVarNumbers(const std::string &s)
{
    std::string out;
    for (size_t i = 0; i < s.size();) {
        bool at_var = s[i] == '_' && i + 1 < s.size() &&
                      std::isdigit(static_cast<unsigned char>(s[i + 1])) &&
                      (i == 0 || !std::isalnum(
                                     static_cast<unsigned char>(s[i - 1])));
        if (at_var) {
            out += "_V";
            ++i;
            while (i < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[i]))) {
                ++i;
            }
        } else {
            out += s[i++];
        }
    }
    return out;
}

/** What any of the three executors reports for a query. */
struct Outcome
{
    bool success = false;
    bool halted = false;
    bool trapped = false;
    std::vector<std::string> solutions;
    std::string error;
    std::string output;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t inferences = 0;
};

Outcome
runMachine(const std::string &program, const std::string &goal, bool fast,
           const KcmOptions &base_options = {}, size_t max_solutions = 5)
{
    KcmOptions options = base_options;
    options.maxSolutions = max_solutions;
    options.machine.fastDispatch = fast;
    KcmSystem system(options);
    if (!program.empty())
        system.consult(program);
    QueryResult result = system.query(goal);

    Outcome out;
    out.success = result.success;
    out.halted = result.halted;
    out.trapped = result.trapped;
    for (const Solution &s : result.solutions)
        out.solutions.push_back(stripVarNumbers(s.toString()));
    out.error = stripVarNumbers(result.error);
    out.output = result.output;
    out.cycles = result.cycles;
    out.instructions = result.instructions;
    out.inferences = result.inferences;
    return out;
}

Outcome
runBaseline(const std::string &program, const std::string &goal,
            size_t max_solutions = 5)
{
    baseline::Interpreter interp;
    if (!program.empty())
        interp.consult(program);
    baseline::InterpResult result = interp.query(goal, max_solutions);

    Outcome out;
    out.success = result.success;
    out.halted = result.halted;
    for (const auto &s : result.solutions)
        out.solutions.push_back(stripVarNumbers(s.toString()));
    out.error = stripVarNumbers(result.error);
    out.output = result.output;
    return out;
}

/**
 * Run @p goal on all three executors. The two simulator cores must be
 * bit-identical in every simulated metric; the baseline must agree on
 * the Prolog-visible outcome. Returns the fast-core outcome.
 */
Outcome
onAllExecutors(const std::string &program, const std::string &goal,
               const KcmOptions &base_options = {},
               size_t max_solutions = 5)
{
    Outcome fast =
        runMachine(program, goal, true, base_options, max_solutions);
    Outcome oracle =
        runMachine(program, goal, false, base_options, max_solutions);

    EXPECT_EQ(fast.success, oracle.success) << goal;
    EXPECT_EQ(fast.halted, oracle.halted) << goal;
    EXPECT_EQ(fast.trapped, oracle.trapped) << goal;
    EXPECT_EQ(fast.solutions, oracle.solutions) << goal;
    EXPECT_EQ(fast.error, oracle.error) << goal;
    EXPECT_EQ(fast.output, oracle.output) << goal;
    EXPECT_EQ(fast.cycles, oracle.cycles)
        << "fast/oracle cycle counts differ for: " << goal;
    EXPECT_EQ(fast.instructions, oracle.instructions) << goal;
    EXPECT_EQ(fast.inferences, oracle.inferences) << goal;

    Outcome base = runBaseline(program, goal, max_solutions);
    EXPECT_EQ(fast.success, base.success) << goal;
    EXPECT_EQ(fast.halted, base.halted) << goal;
    EXPECT_EQ(fast.solutions, base.solutions) << goal;
    EXPECT_EQ(fast.error, base.error) << goal;
    EXPECT_EQ(fast.output, base.output) << goal;
    return fast;
}

} // namespace

// ------------------------------------------------------ basic delivery

TEST(Exceptions, CatchDeliversThrownBall)
{
    Outcome out = onAllExecutors("p :- throw(oops).", "catch(p, E, true)");
    ASSERT_TRUE(out.success);
    ASSERT_EQ(out.solutions.size(), 1u);
    EXPECT_EQ(out.solutions[0], "E = oops");
    EXPECT_FALSE(out.trapped);
    EXPECT_TRUE(out.error.empty());
}

TEST(Exceptions, ThrowCopiesTheBall)
{
    // The ball is a copy taken at throw time (ISO): bindings made
    // between throw and catch do not leak into it, and the thrown
    // structure survives the unwinding of the heap it was built on.
    Outcome out = onAllExecutors(
        "p(X) :- X = f(1, [a, b]), throw(ball(X)).",
        "catch(p(_), ball(B), true)");
    ASSERT_TRUE(out.success);
    ASSERT_EQ(out.solutions.size(), 1u);
    EXPECT_EQ(out.solutions[0], "B = f(1,[a,b])");
}

TEST(Exceptions, BacktrackingPassesThroughCatchBarrier)
{
    // A catch/3 whose goal never throws is a transparent barrier:
    // backtracking enumerates every solution of the protected goal.
    Outcome out = onAllExecutors("p(1). p(2). p(3).",
                                 "catch(p(X), _, fail)");
    ASSERT_TRUE(out.success);
    ASSERT_EQ(out.solutions.size(), 3u);
    EXPECT_EQ(out.solutions[0], "X = 1");
    EXPECT_EQ(out.solutions[2], "X = 3");
}

TEST(Exceptions, ThrowOnBacktrackingIsStillCaught)
{
    // The first solution is delivered; backtracking into the protected
    // goal throws, and the catcher still guards the re-execution.
    Outcome out = onAllExecutors(
        "p(1).\n"
        "p(_) :- throw(no_more).\n",
        "catch(p(X), no_more, X = caught)");
    ASSERT_TRUE(out.success);
    ASSERT_EQ(out.solutions.size(), 2u);
    EXPECT_EQ(out.solutions[0], "X = 1");
    EXPECT_EQ(out.solutions[1], "X = caught");
}

TEST(Exceptions, RecoveryCanFail)
{
    Outcome out = onAllExecutors("", "catch(throw(x), x, fail)");
    EXPECT_FALSE(out.success);
    EXPECT_FALSE(out.trapped);
    EXPECT_TRUE(out.error.empty());
}

TEST(Exceptions, OutputBeforeThrowIsKept)
{
    Outcome out = onAllExecutors(
        "", "catch((write(a), throw(b)), b, write(c))");
    ASSERT_TRUE(out.success);
    EXPECT_EQ(out.output, "ac");
}

// ------------------------------------------------- nesting and rethrow

TEST(Exceptions, NestedCatchRethrowsToOuter)
{
    // The inner catcher does not match; the ball unwinds past it to
    // the outer one.
    Outcome out = onAllExecutors(
        "inner :- catch(throw(deep(nested)), shallow, true).",
        "catch(inner, deep(W), true)");
    ASSERT_TRUE(out.success);
    ASSERT_EQ(out.solutions.size(), 1u);
    EXPECT_EQ(out.solutions[0], "W = nested");
}

TEST(Exceptions, CatcherUnificationFailureRethrows)
{
    Outcome out = onAllExecutors(
        "", "catch(catch(throw(ball(1)), ball(2), true), ball(X), true)");
    ASSERT_TRUE(out.success);
    ASSERT_EQ(out.solutions.size(), 1u);
    EXPECT_EQ(out.solutions[0], "X = 1");
}

TEST(Exceptions, RethrowFromRecovery)
{
    // The recovery goal runs outside the protection of its own
    // catch/3: a throw from it propagates to the enclosing catcher.
    Outcome out = onAllExecutors(
        "", "catch(catch(throw(first), first, throw(second)), S, true)");
    ASSERT_TRUE(out.success);
    ASSERT_EQ(out.solutions.size(), 1u);
    EXPECT_EQ(out.solutions[0], "S = second");
}

TEST(Exceptions, CutInsideProtectedGoalIsLocal)
{
    Outcome out = onAllExecutors("p(1). p(2). p(3).",
                                 "catch((p(X), !), _, fail)");
    ASSERT_TRUE(out.success);
    ASSERT_EQ(out.solutions.size(), 1u);
    EXPECT_EQ(out.solutions[0], "X = 1");
}

// ------------------------------------------------------ uncaught balls

TEST(Exceptions, UncaughtThrowSurfacesAsErrorTerm)
{
    Outcome out = onAllExecutors("", "throw(foo)");
    EXPECT_FALSE(out.success);
    EXPECT_EQ(out.error, "unhandled_exception(foo)");
    EXPECT_TRUE(out.trapped); // simulator-side: an UnhandledException trap
}

TEST(Exceptions, UncaughtBallDoesNotMatchWrongCatcher)
{
    Outcome out = onAllExecutors("", "catch(throw(a), b, true)");
    EXPECT_FALSE(out.success);
    EXPECT_EQ(out.error, "unhandled_exception(a)");
}

TEST(Exceptions, MachineTrapKindIsUnhandledException)
{
    KcmSystem system;
    QueryResult result = system.query("throw(foo)");
    ASSERT_TRUE(result.trapped);
    EXPECT_EQ(result.trap.kind, TrapKind::UnhandledException);
    // The machine stays usable after the trap.
    QueryResult next = system.query("catch(throw(x), x, true)");
    EXPECT_TRUE(next.success);
    EXPECT_FALSE(next.trapped);
}

// ------------------------------------------------------ ISO call errors

TEST(Exceptions, CallOfUnboundIsInstantiationError)
{
    Outcome out =
        onAllExecutors("", "catch(call(X), instantiation_error, true)");
    ASSERT_TRUE(out.success);

    Outcome uncaught = onAllExecutors("", "call(X)");
    EXPECT_FALSE(uncaught.success);
    EXPECT_EQ(uncaught.error,
              "unhandled_exception(instantiation_error)");
}

TEST(Exceptions, CallOfNonCallableIsTypeError)
{
    Outcome out =
        onAllExecutors("", "catch(call(42), type_error(T, C), true)");
    ASSERT_TRUE(out.success);
    ASSERT_EQ(out.solutions.size(), 1u);
    EXPECT_EQ(out.solutions[0], "T = callable, C = 42");
}

TEST(Exceptions, ThrowOfUnboundIsInstantiationError)
{
    Outcome out = onAllExecutors("", "catch(throw(_), E, true)");
    ASSERT_TRUE(out.success);
    ASSERT_EQ(out.solutions.size(), 1u);
    EXPECT_EQ(out.solutions[0], "E = instantiation_error");
}

// ----------------------------------- error terms are re-readable Prolog

TEST(Exceptions, ErrorTermRoundTripsThroughTheReader)
{
    // The formatted error is a valid term even when the ball needs
    // quoting; reading it back and re-writing it is the identity.
    KcmSystem system;
    QueryResult result = system.query("throw('hello world'(42, [a|b]))");
    ASSERT_TRUE(result.trapped);
    ASSERT_FALSE(result.error.empty());

    OperatorTable ops;
    Parser parser(result.error + " .", ops);
    ReadClause read;
    ASSERT_TRUE(parser.readClause(read)) << result.error;
    ASSERT_TRUE(read.term->isStruct());
    EXPECT_EQ(atomText(read.term->functorName()), "unhandled_exception");
    EXPECT_EQ(read.term->arity(), 1u);
    EXPECT_EQ(writeTermQuoted(read.term->arg(0)),
              "'hello world'(42,[a|b])");
}

TEST(Exceptions, ResourceErrorTermRoundTripsThroughTheReader)
{
    KcmOptions options;
    options.machine.governor.cycleBudget = 1500;
    KcmSystem system(options);
    system.consult("loop :- loop.");
    QueryResult result = system.query("loop");
    ASSERT_TRUE(result.trapped);

    OperatorTable ops;
    Parser parser(result.error + " .", ops);
    ReadClause read;
    ASSERT_TRUE(parser.readClause(read)) << result.error;
    ASSERT_TRUE(read.term->isStruct());
    EXPECT_EQ(atomText(read.term->functorName()), "resource_error");
    EXPECT_EQ(writeTerm(read.term->arg(0)), "abort");
}

// --------------------------------------- catchable governor exhaustion

TEST(Exceptions, CycleBudgetAbortIsCatchable)
{
    // Exhausting the cycle budget inside catch/3 delivers a
    // resource_error(abort) ball instead of a machine trap; the
    // recovery goal then runs with the budget waived, so it can do
    // real work. Both cores agree on every metric.
    KcmOptions options;
    options.machine.governor.cycleBudget = 2000;
    std::string program =
        "loop :- loop.\n"
        "mklist(0, []).\n"
        "mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).\n";

    Outcome fast = runMachine(program,
                              "catch(loop, resource_error(E), "
                              "mklist(20, _))",
                              true, options);
    Outcome oracle = runMachine(program,
                                "catch(loop, resource_error(E), "
                                "mklist(20, _))",
                                false, options);
    ASSERT_TRUE(fast.success) << fast.error;
    EXPECT_FALSE(fast.trapped);
    ASSERT_EQ(fast.solutions.size(), 1u);
    EXPECT_EQ(fast.solutions[0], "E = abort");
    EXPECT_EQ(fast.success, oracle.success);
    EXPECT_EQ(fast.solutions, oracle.solutions);
    EXPECT_EQ(fast.cycles, oracle.cycles);
    EXPECT_EQ(fast.instructions, oracle.instructions);
}

TEST(Exceptions, StackOverflowIsCatchable)
{
    KcmOptions options;
    options.machine.governor.globalQuotaWords = 64;
    options.machine.governor.growStacks = false;
    std::string program =
        "mklist(0, []).\n"
        "mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).\n";
    std::string goal = "catch(mklist(200, _), resource_error(E), true)";

    Outcome fast = runMachine(program, goal, true, options);
    Outcome oracle = runMachine(program, goal, false, options);
    ASSERT_TRUE(fast.success) << fast.error;
    EXPECT_FALSE(fast.trapped);
    ASSERT_EQ(fast.solutions.size(), 1u);
    EXPECT_EQ(fast.solutions[0], "E = stack_overflow");
    EXPECT_EQ(fast.solutions, oracle.solutions);
    EXPECT_EQ(fast.cycles, oracle.cycles);
}

TEST(Exceptions, UncaughtResourceTrapUnchanged)
{
    // Without an enclosing catch/3 the governor's trap surfaces
    // exactly as before: RunStatus::Trapped, kind Abort.
    KcmOptions options;
    options.machine.governor.cycleBudget = 2000;
    KcmSystem system(options);
    system.consult("loop :- loop.");
    QueryResult result = system.query("loop");
    EXPECT_FALSE(result.success);
    ASSERT_TRUE(result.trapped);
    EXPECT_EQ(result.trap.kind, TrapKind::Abort);
    EXPECT_NE(result.error.find("resource_error(abort)"),
              std::string::npos);
}

// --------------------------------------------- halt and failure status

TEST(Exceptions, HaltStatusAgreesAcrossExecutors)
{
    Outcome out = onAllExecutors("p(1).", "p(_), halt");
    EXPECT_FALSE(out.success);
    EXPECT_TRUE(out.halted);
    EXPECT_FALSE(out.trapped);
    EXPECT_TRUE(out.error.empty());
}

TEST(Exceptions, FailureStatusAgreesAcrossExecutors)
{
    Outcome out = onAllExecutors("p(1).", "p(9)");
    EXPECT_FALSE(out.success);
    EXPECT_FALSE(out.halted);
    EXPECT_TRUE(out.error.empty());
}

TEST(Exceptions, SuccessDoesNotReportHalt)
{
    Outcome out = onAllExecutors("p(1).", "p(X)");
    EXPECT_TRUE(out.success);
    EXPECT_FALSE(out.halted);
}
