/**
 * @file
 * Dynamic clause-store tests: ClauseStore unit behaviour (indexing,
 * logical update view, serialization, index ablation), differential
 * assert/retract semantics across the fast core, the decode-per-step
 * oracle and the baseline interpreter, and KCMSNAP2 snapshot/restore
 * of mid-iteration dynamic-database state.
 */

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "baseline/interp.hh"
#include "core/machine.hh"
#include "core/snapshot.hh"
#include "db/clause_store.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

Functor
fn(const std::string &name, uint32_t arity)
{
    return {AtomTable::instance().intern(name), arity};
}

TermRef
fact2(const std::string &pred, TermRef a, TermRef b)
{
    return Term::makeStruct(pred, {std::move(a), std::move(b)});
}

/** Every visible candidate seq for (f, key) at @p gen, in order. */
std::vector<int64_t>
visibleSeqs(const db::ClauseStore &s, const Functor &f,
            const db::ArgKey &key, uint64_t gen)
{
    std::vector<int64_t> out;
    db::ClauseStore::LookupResult r = s.first(f, key, gen);
    while (r.clause) {
        out.push_back(r.clause->seq);
        r = s.next(f, key, gen, r.clause->seq);
    }
    return out;
}

/** Total scanned nodes for a full (f, key) walk at @p gen. */
uint64_t
walkScanned(const db::ClauseStore &s, const Functor &f,
            const db::ArgKey &key, uint64_t gen)
{
    uint64_t scanned = 0;
    db::ClauseStore::LookupResult r = s.first(f, key, gen);
    scanned += r.scanned;
    while (r.clause) {
        r = s.next(f, key, gen, r.clause->seq);
        scanned += r.scanned;
    }
    return scanned;
}

/** Normalize variable numbering (_123 -> _V) for comparisons. */
std::string
stripVarNumbers(const std::string &s)
{
    std::string out;
    for (size_t i = 0; i < s.size();) {
        bool at_var = s[i] == '_' && i + 1 < s.size() &&
                      std::isdigit(static_cast<unsigned char>(s[i + 1])) &&
                      (i == 0 || !std::isalnum(
                                     static_cast<unsigned char>(s[i - 1])));
        if (at_var) {
            out += "_V";
            ++i;
            while (i < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[i]))) {
                ++i;
            }
        } else {
            out += s[i++];
        }
    }
    return out;
}

/**
 * Differential harness: run on the fast core, the decode-per-step
 * oracle and the baseline interpreter. Solutions (and trap/error
 * text) must agree everywhere; the two machine cores must also agree
 * bit-for-bit on cycles and inferences.
 */
void
compareEngines(const std::string &program, const std::string &goal,
               size_t max_solutions = 8)
{
    KcmOptions options;
    options.maxSolutions = max_solutions;
    options.machine.fastDispatch = true;
    KcmSystem fast_system(options);
    if (!program.empty())
        fast_system.consult(program);
    QueryResult fast = fast_system.query(goal);

    KcmOptions oracle_options = options;
    oracle_options.machine.fastDispatch = false;
    KcmSystem oracle_system(oracle_options);
    if (!program.empty())
        oracle_system.consult(program);
    QueryResult oracle = oracle_system.query(goal);

    ASSERT_EQ(fast.success, oracle.success) << goal;
    ASSERT_EQ(fast.solutions.size(), oracle.solutions.size()) << goal;
    for (size_t i = 0; i < fast.solutions.size(); ++i) {
        ASSERT_EQ(stripVarNumbers(fast.solutions[i].toString()),
                  stripVarNumbers(oracle.solutions[i].toString()))
            << "fast/oracle solution " << i << " differs for: " << goal;
    }
    ASSERT_EQ(fast.cycles, oracle.cycles)
        << "fast/oracle cycles differ for: " << goal;
    ASSERT_EQ(fast.inferences, oracle.inferences) << goal;
    ASSERT_EQ(fast.trapped, oracle.trapped) << goal;

    baseline::Interpreter interp;
    if (!program.empty())
        interp.consult(program);
    baseline::InterpResult base = interp.query(goal, max_solutions);

    if (fast.trapped) {
        // An uncaught error ball: the baseline reports the same term.
        ASSERT_EQ(stripVarNumbers(fast.error),
                  stripVarNumbers(base.error))
            << "machine/baseline error terms differ for: " << goal;
        return;
    }
    ASSERT_EQ(fast.success, base.success)
        << "machine/baseline disagree on: " << goal;
    ASSERT_EQ(fast.solutions.size(), base.solutions.size()) << goal;
    for (size_t i = 0; i < fast.solutions.size(); ++i) {
        ASSERT_EQ(stripVarNumbers(fast.solutions[i].toString()),
                  stripVarNumbers(base.solutions[i].toString()))
            << "machine/baseline solution " << i << " differs for: "
            << goal;
    }
}

} // namespace

// --- ClauseStore unit behaviour ----------------------------------

TEST(ClauseStore, FirstArgumentIndexFiltersCandidates)
{
    db::ClauseStore store;
    Functor f = fn("p", 2);
    store.declareDynamic(f);

    auto a1 = store.assertClause(
        f, fact2("p", Term::makeAtom("a"), Term::makeInt(1)), nullptr,
        false);
    auto a2 = store.assertClause(
        f, fact2("p", Term::makeInt(7), Term::makeInt(2)), nullptr,
        false);
    auto a3 = store.assertClause(
        f, fact2("p", Term::makeVar("X"), Term::makeInt(3)), nullptr,
        false);
    auto a4 = store.assertClause(
        f, fact2("p", Term::makeAtom("a"), Term::makeInt(4)), nullptr,
        false);
    uint64_t gen = store.generation();

    // Bound atom key: its bucket plus the variable-head clause, in
    // sequence order.
    auto atom_key = db::ArgKey::forTerm(Term::makeAtom("a"));
    EXPECT_EQ(visibleSeqs(store, f, atom_key, gen),
              (std::vector<int64_t>{a1.seq, a3.seq, a4.seq}));

    // Bound int key: only the int clause and the variable-head one.
    auto int_key = db::ArgKey::forTerm(Term::makeInt(7));
    EXPECT_EQ(visibleSeqs(store, f, int_key, gen),
              (std::vector<int64_t>{a2.seq, a3.seq}));

    // A key nothing files under still consults the variable list.
    auto miss_key = db::ArgKey::forTerm(Term::makeInt(999));
    EXPECT_EQ(visibleSeqs(store, f, miss_key, gen),
              (std::vector<int64_t>{a3.seq}));

    // Unbound argument: every clause.
    EXPECT_EQ(visibleSeqs(store, f, db::ArgKey{}, gen),
              (std::vector<int64_t>{a1.seq, a2.seq, a3.seq, a4.seq}));
}

TEST(ClauseStore, AssertaOrdersBeforeEveryExistingClause)
{
    db::ClauseStore store;
    Functor f = fn("p", 2);
    auto back = store.assertClause(
        f, fact2("p", Term::makeInt(1), Term::makeInt(1)), nullptr,
        false);
    auto front = store.assertClause(
        f, fact2("p", Term::makeInt(2), Term::makeInt(2)), nullptr,
        /*at_front=*/true);
    EXPECT_LT(front.seq, back.seq);
    EXPECT_EQ(visibleSeqs(store, f, db::ArgKey{}, store.generation()),
              (std::vector<int64_t>{front.seq, back.seq}));
}

TEST(ClauseStore, LogicalUpdateViewIsolatesCapturedGenerations)
{
    db::ClauseStore store;
    Functor f = fn("p", 2);
    auto c1 = store.assertClause(
        f, fact2("p", Term::makeInt(1), Term::makeInt(1)), nullptr,
        false);
    uint64_t old_gen = store.generation();

    auto c2 = store.assertClause(
        f, fact2("p", Term::makeInt(2), Term::makeInt(2)), nullptr,
        false);
    store.eraseClause(f, c1.seq);
    uint64_t new_gen = store.generation();

    // The captured generation still sees exactly the old world:
    // c2 not yet born, c1 not yet dead.
    EXPECT_EQ(visibleSeqs(store, f, db::ArgKey{}, old_gen),
              (std::vector<int64_t>{c1.seq}));
    // The new generation sees the new world.
    EXPECT_EQ(visibleSeqs(store, f, db::ArgKey{}, new_gen),
              (std::vector<int64_t>{c2.seq}));
    // Re-erasing a tombstone is a no-op (no generation bump).
    store.eraseClause(f, c1.seq);
    EXPECT_EQ(store.generation(), new_gen);
    EXPECT_EQ(store.liveClauseCount(f), 1u);
}

TEST(ClauseStore, SaveLoadRoundTripIsByteStableAndScanIdentical)
{
    db::ClauseStore store;
    Functor f = fn("p", 2);
    Functor g = fn("q", 1);
    store.declareDynamic(g); // declared but empty: must survive too
    // A mix: facts, a rule, a front insert, a tombstone, floats.
    store.assertClause(f, fact2("p", Term::makeAtom("k"), Term::makeInt(1)),
                       nullptr, false);
    store.assertClause(
        f, fact2("p", Term::makeVar("X"), Term::makeVar("Y")),
        Term::makeStruct("q", {Term::makeVar("X")}), false);
    store.assertClause(
        f, fact2("p", Term::makeFloat(2.5), Term::makeInt(3)), nullptr,
        true);
    auto victim = store.assertClause(
        f, fact2("p", Term::makeInt(9), Term::makeInt(9)), nullptr,
        false);
    store.eraseClause(f, victim.seq);

    std::vector<uint8_t> blob;
    store.saveTo(blob);

    db::ClauseStore copy;
    copy.loadFrom(blob.data(), blob.size());
    std::vector<uint8_t> blob2;
    copy.saveTo(blob2);
    EXPECT_EQ(blob, blob2) << "save/load/save must be byte-stable";

    EXPECT_EQ(copy.generation(), store.generation());
    EXPECT_EQ(copy.updateCount(), store.updateCount());
    EXPECT_TRUE(copy.isKnown(g));

    // The rebuilt skiplists must reproduce the original node heights:
    // identical scanned counts on identical walks, at the current AND
    // a captured pre-tombstone generation.
    for (uint64_t gen : {store.generation(), store.generation() - 1}) {
        for (const db::ArgKey &key :
             {db::ArgKey{}, db::ArgKey::forTerm(Term::makeAtom("k")),
              db::ArgKey::forTerm(Term::makeFloat(2.5))}) {
            EXPECT_EQ(visibleSeqs(copy, f, key, gen),
                      visibleSeqs(store, f, key, gen));
            EXPECT_EQ(walkScanned(copy, f, key, gen),
                      walkScanned(store, f, key, gen));
        }
    }
}

TEST(ClauseStore, IndexAblationPreservesVisibleSequence)
{
    db::DynDbConfig configs[4];
    configs[1].skiplist = false;
    configs[2].hashIndex = false;
    configs[3].hashIndex = false;
    configs[3].skiplist = false;

    Functor f = fn("p", 2);
    std::vector<std::vector<int64_t>> all_any, all_matching;
    for (const db::DynDbConfig &cfg : configs) {
        db::ClauseStore store(cfg);
        for (int i = 0; i < 40; ++i) {
            store.assertClause(
                f, fact2("p", Term::makeInt(i % 7), Term::makeInt(i)),
                nullptr, i % 5 == 0);
        }
        uint64_t gen = store.generation();
        all_any.push_back(visibleSeqs(store, f, db::ArgKey{}, gen));

        // A bound key yields a candidate superset without the hash
        // index; the clauses whose first argument actually equals the
        // key must be the same subsequence in every configuration.
        std::vector<int64_t> matching;
        auto key = db::ArgKey::forTerm(Term::makeInt(3));
        db::ClauseStore::LookupResult r = store.first(f, key, gen);
        while (r.clause) {
            if (db::ArgKey::forHead(r.clause->head) == key)
                matching.push_back(r.clause->seq);
            r = store.next(f, key, gen, r.clause->seq);
        }
        all_matching.push_back(matching);
    }
    for (int i = 1; i < 4; ++i) {
        EXPECT_EQ(all_any[i], all_any[0]) << "config " << i;
        EXPECT_EQ(all_matching[i], all_matching[0]) << "config " << i;
        EXPECT_FALSE(all_matching[i].empty());
    }
}

// --- differential semantics across all three engines --------------

TEST(DynamicDbDifferential, AssertRetractUnderBacktracking)
{
    const std::string program = ":- dynamic(p/1).\n";
    // retract(p(X)) erases the first clause and binds X; the erasure
    // is a side effect that backtracking must NOT undo.
    compareEngines(program,
                   "assertz(p(1)), assertz(p(2)), retract(p(X)), p(Y)");
    // A retract whose continuation fails: the erasure still stands,
    // and the engines agree that only p(2) survives.
    compareEngines(program,
                   "assertz(p(1)), assertz(p(2)), "
                   "( retract(p(1)), fail ; true ), p(X)");
    // retract is semidet: it erases exactly one clause per call.
    compareEngines(program,
                   "assertz(p(1)), assertz(p(1)), retract(p(1)), p(X)");
}

TEST(DynamicDbDifferential, LogicalUpdateViewMidIteration)
{
    const std::string program = ":- dynamic(p/1).\n";
    // Clauses asserted while p(X) iterates are invisible to it — the
    // goal captured its generation at call time.
    compareEngines(program,
                   "assertz(p(1)), assertz(p(2)), p(X), assertz(p(9))");
    // Retract-while-iterating: the iteration still sees the clause it
    // is standing on and the ones retracted behind its cursor.
    compareEngines(program,
                   "assertz(p(1)), assertz(p(2)), assertz(p(3)), "
                   "p(X), ( retract(p(2)) ; true )");
    // asserta orders before existing clauses for NEW iterations only.
    compareEngines(program,
                   "assertz(p(1)), asserta(p(0)), p(X)");
}

TEST(DynamicDbDifferential, ErrorBallsAgreeAcrossEngines)
{
    const std::string program = ":- dynamic(p/1).\n";
    compareEngines(program, "catch(assertz(X), E, true)");
    compareEngines(program, "catch(asserta(1), E, true)");
    compareEngines(program, "catch(retract(X), E, true)");
    // Modifying a static procedure is a permission error.
    compareEngines("r(1).\n", "catch(assertz(r(2)), E, true)");
    compareEngines("r(1).\n", "catch(retract(r(1)), E, true)");
}

TEST(DynamicDbDifferential, DynamicInitFromConsultedClauses)
{
    // Clauses of a dynamic predicate consulted from source seed the
    // store (the --db-facts path) and stay mutable.
    const std::string program = ":- dynamic(p/2).\n"
                                "p(1, a).\n"
                                "p(2, b).\n"
                                "bridge(X, Y) :- p(X, Y).\n";
    compareEngines(program, "bridge(2, Y)");
    compareEngines(program, "retract(p(1, a)), bridge(X, Y)");
    compareEngines(program, "assertz(p(3, c)), bridge(3, Y)");
}

// --- KCMSNAP2 snapshot/restore of dynamic state -------------------

TEST(DynamicDbSnapshot, MidIterationStateRestoresBitIdentically)
{
    KcmSystem host;
    std::string program = ":- dynamic(p/1).\n:- dynamic(q/1).\n";
    for (int i = 1; i <= 20; ++i)
        program += "p(" + std::to_string(i) + ").\n";
    host.consult(program);
    // Mutate the store (fresh clause + tombstone), then iterate the
    // cross product until a late solution; the budget traps mid-walk.
    CodeImage image = host.compileOnly(
        "assertz(q(10)), assertz(q(11)), retract(q(10)), "
        "p(X), p(Y), 38 is X + Y");

    MachineConfig config;
    config.governor.cycleBudget = 4000;
    Machine source(config);
    source.load(image);
    ASSERT_EQ(source.run(), RunStatus::Trapped)
        << "test premise: the budget must interrupt mid-iteration";
    ASSERT_NE(source.dynamicDb(), nullptr);

    Snapshot snap = takeSnapshot(source);

    // Restore into a fresh machine: the clause store (including the
    // q/1 tombstone and live iterator generations parked in X
    // registers) must come back exactly; an immediate re-snapshot is
    // byte-identical.
    Machine restored(config);
    restoreSnapshot(restored, snap);
    ASSERT_NE(restored.dynamicDb(), nullptr);
    EXPECT_EQ(restored.dynamicDb()->generation(),
              source.dynamicDb()->generation());
    EXPECT_EQ(restored.dynamicDb()->updateCount(),
              source.dynamicDb()->updateCount());
    Snapshot again = takeSnapshot(restored);
    EXPECT_EQ(snap.bytes, again.bytes)
        << "restore + re-snapshot must be byte-stable";

    // Both machines resume to the same solution at the same cycle.
    source.setCycleBudget(0);
    restored.setCycleBudget(0);
    ASSERT_EQ(source.resume(), RunStatus::SolutionFound);
    ASSERT_EQ(restored.resume(), RunStatus::SolutionFound);
    EXPECT_EQ(stripVarNumbers(restored.lastSolution().toString()),
              stripVarNumbers(source.lastSolution().toString()));
    EXPECT_EQ(restored.cycles(), source.cycles());
    EXPECT_EQ(restored.instructions(), source.instructions());
    EXPECT_EQ(restored.inferences(), source.inferences());
}

TEST(DynamicDbSnapshot, RestoreReplacesAttachedStoreContents)
{
    // A snapshot of a machine with dynamic state, restored into a
    // machine whose store holds unrelated clauses: the restore must
    // replace the contents (no merge, no leak of the old clauses).
    KcmSystem host;
    host.consult(":- dynamic(p/1).\np(1).\n");
    CodeImage image = host.compileOnly("p(X)");

    Machine source;
    source.load(image);
    ASSERT_EQ(source.run(), RunStatus::SolutionFound);
    Snapshot snap = takeSnapshot(source);

    Machine victim;
    auto polluted = std::make_shared<db::ClauseStore>();
    Functor junk = fn("junk", 2);
    polluted->assertClause(
        junk, fact2("junk", Term::makeInt(1), Term::makeInt(2)),
        nullptr, false);
    victim.attachDynamicDb(polluted);
    restoreSnapshot(victim, snap);
    ASSERT_NE(victim.dynamicDb(), nullptr);
    EXPECT_FALSE(victim.dynamicDb()->isKnown(junk));
    EXPECT_TRUE(victim.dynamicDb()->isKnown(fn("p", 1)));
    EXPECT_EQ(victim.dynamicDb()->generation(),
              source.dynamicDb()->generation());
}
