/**
 * @file
 * Public API (KcmSystem) behaviour tests.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "kcm/kcm.hh"

using namespace kcm;

TEST(Api, MachineBeforeQueryIsFatal)
{
    KcmSystem system;
    EXPECT_THROW(system.machine(), FatalError);
}

TEST(Api, MultipleConsultsAccumulate)
{
    KcmSystem system;
    system.consult("p(a).");
    system.consult("p(b).");
    system.consult("q(X) :- p(X).");
    KcmOptions options;
    options.maxSolutions = 10;
    KcmSystem multi(options);
    multi.consult("p(a).");
    multi.consult("p(b).");
    multi.consult("q(X) :- p(X).");
    auto result = multi.query("q(X)");
    EXPECT_EQ(result.solutions.size(), 2u);
}

TEST(Api, QueriesAreIndependent)
{
    KcmSystem system;
    system.consult("p(1).");
    auto first = system.query("p(X)");
    auto second = system.query("p(X)");
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.solutions[0].toString(),
              second.solutions[0].toString());
}

TEST(Api, CompileOnlyDoesNotRun)
{
    KcmSystem system;
    system.consult("p(a).");
    CodeImage image = system.compileOnly("p(X)");
    EXPECT_GT(image.words.size(), 0u);
    EXPECT_NE(image.queryEntry, 0u);
    EXPECT_THROW(system.machine(), FatalError);
}

TEST(Api, EmptyQueryStringIsFatal)
{
    KcmSystem system;
    system.consult("p(a).");
    EXPECT_THROW(system.query(""), FatalError);
}

TEST(Api, SyntaxErrorSurfacesAsFatal)
{
    KcmSystem system;
    system.consult("p(a).");
    EXPECT_THROW(system.query("p(X"), FatalError);
    KcmSystem bad;
    bad.consult("p(a"); // deferred until compile
    EXPECT_THROW(bad.query("p(X)"), FatalError);
}

TEST(Api, QueryWithDirectivePrefixAccepted)
{
    KcmSystem system;
    system.consult("p(a).");
    EXPECT_TRUE(system.query("?- p(a)").success);
}

TEST(Api, OutputAccumulatesAcrossSolutions)
{
    KcmOptions options;
    options.maxSolutions = 3;
    KcmSystem system(options);
    system.consult("p(1). p(2). p(3).");
    auto result = system.query("p(X), write(X)");
    EXPECT_EQ(result.output, "123");
}

TEST(Api, MaxSolutionsZeroMeansAll)
{
    KcmOptions options;
    options.maxSolutions = 0; // no limit
    KcmSystem system(options);
    system.consult("p(1). p(2). p(3).");
    auto result = system.query("p(X)");
    EXPECT_EQ(result.solutions.size(), 3u);
}

TEST(Api, ResultCarriesAllMeasurements)
{
    KcmSystem system;
    system.consult("p(a).");
    auto result = system.query("p(a)");
    EXPECT_TRUE(result.success);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.instructions, 0u);
    EXPECT_GT(result.inferences, 0u);
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_GT(result.klips, 0.0);
}

TEST(Api, StatsDumpContainsAllGroups)
{
    KcmSystem system;
    system.consult("p(a).");
    system.query("p(a)");
    std::ostringstream os;
    system.machine().stats().dump(os);
    std::string dump = os.str();
    for (const char *key :
         {"machine.deepFails", "machine.mem.dcache.readHits",
          "machine.mem.icache.readMisses", "machine.mem.mmu.translations",
          "machine.mem.zoneCheck.checksPerformed",
          "machine.mem.memory.readWords"}) {
        EXPECT_NE(dump.find(key), std::string::npos) << key;
    }
}

TEST(Api, StatLookupByPath)
{
    KcmSystem system;
    system.consult("p(a).");
    system.query("p(a)");
    StatGroup &stats = system.machine().stats();
    EXPECT_GT(stats.lookup("mem.mmu.translations"), 0u);
}

TEST(Api, OperatorDirectiveInConsultedSource)
{
    KcmSystem system;
    system.consult(":- op(700, xfx, ===).\n"
                   "eq(X, Y) :- X === Y.\n"
                   "A === A.\n");
    EXPECT_TRUE(system.query("eq(foo, foo)").success);
    EXPECT_FALSE(system.query("eq(foo, bar)").success);
}

TEST(Api, LargeProgramCompilesAndRuns)
{
    // 200 facts, indexed dispatch.
    std::string program;
    for (int i = 0; i < 200; ++i) {
        program += "big(" + std::to_string(i) + ", v" +
                   std::to_string(i) + ").\n";
    }
    KcmSystem system;
    system.consult(program);
    auto result = system.query("big(137, V)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.solutions[0].toString(), "V = v137");
    // Constant indexing: selecting fact 137 must not scan linearly
    // through 137 clause bodies (switch probes are table lookups).
    EXPECT_LT(result.cycles, 4000u);
}
