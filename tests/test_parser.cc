/**
 * @file
 * Reader (parser) unit tests: operator precedence, lists, functor
 * application, directives.
 */

#include <cctype>

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "prolog/parser.hh"
#include "prolog/writer.hh"

using namespace kcm;

namespace
{

/**
 * Parse one term and print it back canonically (ignore_ops), with every
 * variable occurrence normalized to "_$V" so tests don't depend on
 * process-global variable numbering.
 */
std::string
stripVarNumbers(const std::string &s)
{
    std::string out;
    for (size_t i = 0; i < s.size();) {
        bool at_var = s[i] == '_' && i + 1 < s.size() &&
                      std::isdigit(static_cast<unsigned char>(s[i + 1])) &&
                      (i == 0 || !std::isalnum(
                                     static_cast<unsigned char>(s[i - 1])));
        if (at_var) {
            out += "_$V";
            ++i;
            while (i < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[i]))) {
                ++i;
            }
        } else {
            out += s[i++];
        }
    }
    return out;
}

std::string
canon(const std::string &text)
{
    TermRef t = parseTermText(text);
    OperatorTable ops;
    WriteOptions options;
    options.ignoreOps = true;
    options.quoted = true;
    return stripVarNumbers(writeTerm(t, ops, options));
}

} // namespace

TEST(Parser, Atoms)
{
    EXPECT_EQ(canon("foo"), "foo");
    EXPECT_EQ(canon("'hello world'"), "'hello world'");
}

TEST(Parser, Numbers)
{
    EXPECT_EQ(canon("42"), "42");
    EXPECT_EQ(canon("-7"), "-7");
    EXPECT_EQ(canon("3.5"), "3.5");
}

TEST(Parser, FunctorApplication)
{
    EXPECT_EQ(canon("f(a,b)"), "f(a,b)");
    EXPECT_EQ(canon("f(g(h(x)))"), "f(g(h(x)))");
}

TEST(Parser, InfixPrecedence)
{
    EXPECT_EQ(canon("1+2*3"), "+(1,*(2,3))");
    EXPECT_EQ(canon("1*2+3"), "+(*(1,2),3)");
    EXPECT_EQ(canon("(1+2)*3"), "*(+(1,2),3)");
}

TEST(Parser, LeftAssociativity)
{
    EXPECT_EQ(canon("1-2-3"), "-(-(1,2),3)");
    EXPECT_EQ(canon("8//2//2"), "//(//(8,2),2)");
}

TEST(Parser, RightAssociativity)
{
    EXPECT_EQ(canon("(a,b,c)"), "','(a,','(b,c))");
    EXPECT_EQ(canon("2^3^4"), "^(2,^(3,4))");
}

TEST(Parser, ClauseNeck)
{
    EXPECT_EQ(canon("a :- b, c"), ":-(a,','(b,c))");
}

TEST(Parser, ComparisonOps)
{
    EXPECT_EQ(canon("X is Y+1"), "is(_$V,+(_$V,1))");
    EXPECT_EQ(canon("A =< B"), "=<(_$V,_$V)");
}

TEST(Parser, PrefixMinusVsNegativeLiteral)
{
    EXPECT_EQ(canon("-(a)"), "-(a)");
    EXPECT_EQ(canon("- 1"), "-(1)");
    EXPECT_EQ(canon("1 - 2"), "-(1,2)");
    EXPECT_EQ(canon("-X"), "-(_$V)");
    EXPECT_EQ(canon("3 - -2"), "-(3,-2)");
}

TEST(Parser, Lists)
{
    EXPECT_EQ(canon("[]"), "[]");
    EXPECT_EQ(canon("[a]"), "'.'(a,[])");
    EXPECT_EQ(canon("[a,b]"), "'.'(a,'.'(b,[]))");
    EXPECT_EQ(canon("[a|T]"), "'.'(a,_$V)");
    EXPECT_EQ(canon("[a,b|T]"), "'.'(a,'.'(b,_$V))");
}

TEST(Parser, CommaInsideArgsBindsTighter)
{
    // Inside an argument list, ',' separates arguments (priority 999).
    EXPECT_EQ(canon("f(a,b)"), "f(a,b)");
    EXPECT_EQ(canon("f((a,b))"), "f(','(a,b))");
}

TEST(Parser, CurlyBraces)
{
    EXPECT_EQ(canon("{}"), "{}");
    EXPECT_EQ(canon("{a,b}"), "{}(','(a,b))");
}

TEST(Parser, Strings)
{
    EXPECT_EQ(canon("\"ab\""), "'.'(97,'.'(98,[]))");
}

TEST(Parser, SharedVariables)
{
    TermRef t = parseTermText("f(X,X,Y)");
    EXPECT_EQ(t->arg(0).get(), t->arg(1).get());
    EXPECT_NE(t->arg(0).get(), t->arg(2).get());
}

TEST(Parser, AnonymousVariablesAreDistinct)
{
    TermRef t = parseTermText("f(_,_)");
    EXPECT_NE(t->arg(0).get(), t->arg(1).get());
}

TEST(Parser, VariableScopePerClause)
{
    OperatorTable ops;
    Parser parser("f(X). g(X).", ops);
    auto clauses = parser.readAll();
    ASSERT_EQ(clauses.size(), 2u);
    EXPECT_NE(clauses[0].term->arg(0).get(), clauses[1].term->arg(0).get());
}

TEST(Parser, VarNamesRecorded)
{
    OperatorTable ops;
    Parser parser("f(Alpha,Beta,Alpha).", ops);
    ReadClause clause;
    ASSERT_TRUE(parser.readClause(clause));
    ASSERT_EQ(clause.varNames.size(), 2u);
    EXPECT_EQ(clause.varNames[0].first, "Alpha");
    EXPECT_EQ(clause.varNames[1].first, "Beta");
}

TEST(Parser, CutInBody)
{
    EXPECT_EQ(canon("a :- b, !, c"), ":-(a,','(b,','(!,c)))");
}

TEST(Parser, Disjunction)
{
    EXPECT_EQ(canon("(a ; b)"), ";(a,b)");
    EXPECT_EQ(canon("(a -> b ; c)"), ";(->(a,b),c)");
}

TEST(Parser, BarAsDisjunctionInBody)
{
    EXPECT_EQ(canon("(a | b)"), ";(a,b)");
}

TEST(Parser, OpDirectiveAffectsLaterClauses)
{
    OperatorTable ops;
    Parser parser(":- op(700, xfx, ===). a === b.", ops);
    auto clauses = parser.readAll();
    ASSERT_EQ(clauses.size(), 2u);
    WriteOptions options;
    options.ignoreOps = true;
    EXPECT_EQ(writeTerm(clauses[1].term, ops, options), "===(a,b)");
}

TEST(Parser, MissingDotThrows)
{
    OperatorTable ops;
    Parser parser("f(a) f(b).", ops);
    ReadClause clause;
    EXPECT_THROW(parser.readClause(clause), FatalError);
}

TEST(Parser, UnbalancedParenThrows)
{
    EXPECT_THROW(parseTermText("f(a"), FatalError);
}

TEST(Parser, MultiClauseProgram)
{
    auto clauses = parseProgramText(
        "append([], L, L).\n"
        "append([H|T], L, [H|R]) :- append(T, L, R).\n");
    ASSERT_EQ(clauses.size(), 2u);
    EXPECT_TRUE(clauses[1].term->isStruct());
    EXPECT_EQ(atomText(clauses[1].term->functorName()), ":-");
}

TEST(Parser, OperatorAtomAsArgument)
{
    // An operator name used as a plain argument.
    EXPECT_EQ(canon("f(+,-)"), "f(+,-)");
}

TEST(Parser, NestedListOfStructures)
{
    EXPECT_EQ(canon("[f(1),g(2,h(3))]"),
              "'.'(f(1),'.'(g(2,h(3)),[]))");
}

TEST(Writer, OperatorAwareOutput)
{
    TermRef t = parseTermText("1+2*3");
    EXPECT_EQ(writeTerm(t), "1 + 2 * 3");
    t = parseTermText("(1+2)*3");
    EXPECT_EQ(writeTerm(t), "(1 + 2) * 3");
}

TEST(Writer, ListOutput)
{
    TermRef t = parseTermText("[a,b|C]");
    EXPECT_EQ(writeTerm(t).substr(0, 5), "[a,b|");
}

TEST(Writer, QuotedOutput)
{
    TermRef t = parseTermText("'hello world'");
    EXPECT_EQ(writeTermQuoted(t), "'hello world'");
    EXPECT_EQ(writeTerm(t), "hello world");
}

TEST(Writer, RoundTripThroughParser)
{
    const char *cases[] = {
        "f(a,b,c)",
        "[1,2,3,4]",
        "a :- b , c",
        "- (1)",
        "f([g(X)|T])",
        "{a}",
    };
    for (const char *text : cases) {
        TermRef once = parseTermText(text);
        std::string printed = writeTermQuoted(once);
        TermRef twice = parseTermText(printed);
        // Variables differ by identity, so compare with numbering
        // stripped.
        EXPECT_EQ(stripVarNumbers(writeTermQuoted(twice)),
                  stripVarNumbers(printed))
            << text;
    }
}
