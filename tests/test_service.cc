/**
 * @file
 * Supervised query service: Session recovery semantics and Supervisor
 * pool behaviour.
 *
 * The contract under test is the serving one: a supervised query
 * either completes with the same answer an unsupervised run produces
 * (checkpointing must be invisible to every simulated metric), or
 * fails *cleanly* with a structured, classified FailureReport — never
 * a hang, never a silently wrong answer. Recovery escalation (restore
 * the checkpoint, then a fresh-machine restart when the checkpoint
 * re-traps without progress) and load shedding are pinned down
 * deterministically.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "base/logging.hh"
#include "baseline/interp.hh"
#include "core/snapshot.hh"
#include "kcm/kcm.hh"
#include "mem/zone_check.hh"
#include "service/supervisor.hh"

using namespace kcm;

namespace
{

const char *serviceProgram =
    "sumto(0, 0).\n"
    "sumto(N, S) :- N > 0, M is N - 1, sumto(M, T), S is T + N.\n"
    "mklist(0, []).\n"
    "mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).\n"
    "app([], L, L).\n"
    "app([H|T], L, [H|R]) :- app(T, L, R).\n"
    "rev([], []).\n"
    "rev([H|T], R) :- rev(T, RT), app(RT, [H], R).\n"
    "suml([], A, A).\n"
    "suml([H|T], A, S) :- B is A + H, suml(T, B, S).\n"
    "revsum(N, S) :- mklist(N, L), rev(L, R), suml(R, 0, S).\n"
    "iter(0, A, A).\n"
    "iter(N, A, S) :- N > 0, sumto(200, T), B is A + T, M is N - 1,\n"
    "                 iter(M, B, S).\n"
    // Determinate (cut) variants: multi-megacycle without piling up
    // choice points, so long runs stay within the default memory.
    "sumc(0, 0).\n"
    "sumc(N, S) :- N > 0, !, M is N - 1, sumc(M, T), S is T + N.\n"
    "itc(0, A, A).\n"
    "itc(N, A, S) :- N > 0, !, sumc(200, T), B is A + T, M is N - 1,\n"
    "                itc(M, B, S).\n"
    "loop :- loop.\n";

/** Compile one goal against the shared test program. */
CodeImage
compileQuery(const std::string &goal, const MachineConfig &machine)
{
    KcmOptions options;
    options.machine = machine;
    KcmSystem host(options);
    host.consult(serviceProgram);
    return host.compileOnly(goal);
}

/** Run one supervised query to completion. */
service::QueryOutcome
runSession(const std::string &goal, service::SessionOptions options)
{
    options.backoffBaseMs = 0; // tests want wall-clock speed
    CodeImage image = compileQuery(goal, options.machine);
    service::Session session(std::move(image), std::move(options));
    return session.run();
}

/** The session's absolute-deadline clock: steady ns since epoch. */
uint64_t
steadyNowNs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count());
}

/** Premise check: the same goal + config traps without supervision. */
TrapKind
unsupervisedTrap(const std::string &goal, const MachineConfig &machine)
{
    Machine bare(machine);
    bare.load(compileQuery(goal, machine));
    EXPECT_EQ(bare.run(), RunStatus::Trapped)
        << "test premise: " << goal << " must trap unsupervised";
    return bare.lastTrap().kind;
}

} // namespace

TEST(Session, CheckpointingDoesNotPerturbSimulatedMetrics)
{
    // ~3.3 simulated Mcycles: crosses several 1-Mcycle checkpoint
    // boundaries (and stays clear of trail exhaustion, which a
    // deterministic run meets near 11 Mcycles).
    const char *goal = "itc(300, 0, S)";

    service::SessionOptions plain;
    plain.checkpointEveryMcycles = 0;
    plain.maxRetries = 0;
    service::QueryOutcome base = runSession(goal, plain);
    ASSERT_EQ(base.status, service::QueryStatus::Completed);
    ASSERT_TRUE(base.success);
    ASSERT_EQ(base.counters.checkpoints, 0u);
    ASSERT_GE(base.cycles, 2'000'000u)
        << "test premise: the goal must cross checkpoint intervals";

    service::SessionOptions supervised;
    supervised.checkpointEveryMcycles = 1;
    service::QueryOutcome ckpt = runSession(goal, supervised);
    ASSERT_EQ(ckpt.status, service::QueryStatus::Completed);
    EXPECT_EQ(ckpt.cycles, base.cycles);
    EXPECT_EQ(ckpt.instructions, base.instructions);
    EXPECT_EQ(ckpt.inferences, base.inferences);
    ASSERT_EQ(ckpt.solutions.size(), base.solutions.size());
    EXPECT_EQ(ckpt.solutions[0].toString(),
              base.solutions[0].toString());
    // Initial checkpoint + at least two periodic ones.
    EXPECT_GE(ckpt.counters.checkpoints, 3u);
    EXPECT_GT(ckpt.counters.checkpointBytes, 0u);
    EXPECT_EQ(ckpt.counters.retries, 0u);
    EXPECT_EQ(ckpt.counters.restarts, 0u);
}

TEST(Session, RecoversFromInjectedPageFault)
{
    const char *goal = "sumto(500, S)";
    service::SessionOptions clean;
    service::QueryOutcome want = runSession(goal, clean);
    ASSERT_TRUE(want.success);

    service::SessionOptions faulty;
    FaultAction fault;
    fault.cycle = 4000;
    fault.kind = FaultKind::InjectPageFault;
    faulty.machine.faultPlan.actions.push_back(fault);
    ASSERT_EQ(unsupervisedTrap(goal, faulty.machine),
              TrapKind::PageFault);

    service::QueryOutcome out = runSession(goal, faulty);
    EXPECT_EQ(out.status, service::QueryStatus::Completed);
    ASSERT_TRUE(out.success) << out.failure.classification;
    EXPECT_EQ(out.solutions[0].toString(),
              want.solutions[0].toString());
    EXPECT_GE(out.counters.retries + out.counters.restarts, 1u);
    EXPECT_GT(out.counters.recoveryCycles, 0u);
}

TEST(Session, RecoversFromTightenedZone)
{
    const char *goal = "revsum(40, S)";
    service::SessionOptions clean;
    service::QueryOutcome want = runSession(goal, clean);
    ASSERT_TRUE(want.success);

    service::SessionOptions faulty;
    FaultAction fault;
    fault.cycle = 1500;
    fault.kind = FaultKind::TightenZone;
    fault.zone = Zone::Global;
    DataLayout layout;
    fault.limit = layout.globalStart + 8;
    faulty.machine.faultPlan.actions.push_back(fault);
    unsupervisedTrap(goal, faulty.machine);

    service::QueryOutcome out = runSession(goal, faulty);
    EXPECT_EQ(out.status, service::QueryStatus::Completed);
    ASSERT_TRUE(out.success) << out.failure.classification;
    EXPECT_EQ(out.solutions[0].toString(),
              want.solutions[0].toString());
    EXPECT_GE(out.counters.retries + out.counters.restarts, 1u);
}

TEST(Session, RecoversFromCorruptedWord)
{
    const char *goal = "revsum(40, S)";
    service::SessionOptions clean;
    service::QueryOutcome want = runSession(goal, clean);
    ASSERT_TRUE(want.success);

    // Corrupt live list cells with Refs into the unmapped gap between
    // the static and global zones: the next dereference traps (and
    // can never decode as a plausible ground answer). rev/app re-read
    // the low heap throughout the quadratic run, so darts spread over
    // cells and cycles are guaranteed to be observed.
    service::SessionOptions faulty;
    DataLayout layout;
    const uint64_t darts[][2] = {
        {1000, 10}, {3000, 30}, {5000, 50}, {8000, 70}, {12000, 26},
    };
    for (const auto &dart : darts) {
        FaultAction fault;
        fault.cycle = dart[0];
        fault.kind = FaultKind::CorruptWord;
        fault.addr = layout.globalStart + Addr(dart[1]);
        fault.raw = Word::make(Tag::Ref, Zone::Global,
                               layout.staticEnd + 16)
                        .raw();
        faulty.machine.faultPlan.actions.push_back(fault);
    }
    unsupervisedTrap(goal, faulty.machine);

    service::QueryOutcome out = runSession(goal, faulty);
    EXPECT_EQ(out.status, service::QueryStatus::Completed);
    ASSERT_TRUE(out.success) << out.failure.classification;
    EXPECT_EQ(out.solutions[0].toString(),
              want.solutions[0].toString());
    EXPECT_GE(out.counters.retries + out.counters.restarts, 1u);
}

TEST(Session, ExhaustedRetriesFailCleanlyWithRestartEscalation)
{
    // A cycle budget the goal can never fit in: every attempt traps
    // at the same simulated cycle. The first recovery restores the
    // checkpoint; the re-trap makes no progress, so the session
    // escalates to fresh-machine restarts; the budget then runs out
    // and the failure is classified — not hung, not crashed.
    service::SessionOptions options;
    options.machine.governor.cycleBudget = 3000;
    options.maxRetries = 2;
    service::QueryOutcome out = runSession("sumto(1200, S)", options);

    EXPECT_EQ(out.status, service::QueryStatus::Failed);
    EXPECT_FALSE(out.success);
    EXPECT_NE(out.failure.classification.find("resource_error"),
              std::string::npos)
        << out.failure.classification;
    EXPECT_EQ(out.failure.trapKind, TrapKind::Abort);
    EXPECT_EQ(out.failure.attempts, 3u); // 1 + maxRetries
    EXPECT_EQ(out.counters.retries, 1u);
    EXPECT_EQ(out.counters.restarts, 1u);
    EXPECT_GT(out.failure.cyclesLost, 0u);
    EXPECT_FALSE(out.failure.detail.empty());
}

TEST(Session, UnhandledExceptionIsAProgramOutcomeNotRetried)
{
    service::SessionOptions options;
    options.maxRetries = 3;
    service::QueryOutcome out =
        runSession("sumto(5, S), throw(boom(S))", options);

    // The baseline interpreter reports the same uncaught ball; the
    // service must treat it as a completed (if failed) program, not a
    // machine fault worth retrying.
    EXPECT_EQ(out.status, service::QueryStatus::Completed);
    EXPECT_FALSE(out.success);
    EXPECT_NE(out.error.find("boom(15)"), std::string::npos)
        << out.error;
    EXPECT_EQ(out.counters.retries, 0u);
    EXPECT_EQ(out.counters.restarts, 0u);
}

TEST(Session, BlownDeadlineFailsCleanly)
{
    service::SessionOptions options;
    options.deadlineMs = 60;
    options.checkpointEveryMcycles = 0;
    options.maxRetries = 0;
    options.watchdogSliceCycles = 100'000;
    service::QueryOutcome out = runSession("loop", options);

    EXPECT_EQ(out.status, service::QueryStatus::Failed);
    EXPECT_EQ(out.failure.classification, "deadline_exceeded");
    EXPECT_EQ(out.failure.attempts, 1u);
    EXPECT_EQ(out.failure.trapKind, TrapKind::Abort);
}

TEST(Supervisor, BatchCompletesInSubmissionOrder)
{
    service::SupervisorOptions options;
    options.workers = 4;
    options.session.backoffBaseMs = 0;

    KcmOptions compile_options;
    compile_options.machine = options.session.machine;
    KcmSystem host(compile_options);
    host.consult(serviceProgram);

    service::Supervisor supervisor(options);
    std::vector<uint64_t> expected;
    for (int i = 0; i < 12; ++i) {
        uint64_t n = 50 + uint64_t(i);
        expected.push_back(n * (n + 1) / 2);
        service::QueryJob job;
        job.id = cat("q", i);
        job.goal = cat("sumto(", n, ", S)");
        supervisor.submit(job, host.compileOnly(job.goal));
    }
    std::vector<service::ServiceResult> results = supervisor.drain();
    service::ServiceStats stats = supervisor.stats();

    ASSERT_EQ(results.size(), 12u);
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].job.id, cat("q", i));
        EXPECT_EQ(results[i].outcome.status,
                  service::QueryStatus::Completed);
        ASSERT_TRUE(results[i].outcome.success);
        EXPECT_NE(results[i].outcome.solutions[0].toString().find(
                      std::to_string(expected[i])),
                  std::string::npos);
    }
    EXPECT_EQ(stats.submitted, 12u);
    EXPECT_EQ(stats.completed, 12u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.shed, 0u);
}

TEST(Supervisor, ShedsEarliestDeadlineWhenQueueFull)
{
    // startPaused keeps the workers idle while the admission queue
    // fills, so the eviction decision is deterministic: with a depth
    // of 2, the third submit evicts the queued query with the
    // earliest deadline (q1), not the oldest (q0) or the newest.
    service::SupervisorOptions options;
    options.workers = 2;
    options.maxQueueDepth = 2;
    options.startPaused = true;
    options.session.backoffBaseMs = 0;

    KcmOptions compile_options;
    compile_options.machine = options.session.machine;
    KcmSystem host(compile_options);
    host.consult(serviceProgram);

    service::Supervisor supervisor(options);
    const uint64_t deadlines[] = {5000, 100, 0};
    for (int i = 0; i < 3; ++i) {
        service::QueryJob job;
        job.id = cat("q", i);
        job.goal = "sumto(100, S)";
        job.deadlineMs = deadlines[i];
        supervisor.submit(job, host.compileOnly(job.goal));
    }
    supervisor.resume();
    std::vector<service::ServiceResult> results = supervisor.drain();
    service::ServiceStats stats = supervisor.stats();

    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].outcome.status,
              service::QueryStatus::Completed);
    EXPECT_EQ(results[1].outcome.status, service::QueryStatus::Shed);
    EXPECT_EQ(results[1].outcome.failure.classification, "overloaded");
    EXPECT_EQ(results[2].outcome.status,
              service::QueryStatus::Completed);
    EXPECT_EQ(stats.submitted, 3u);
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.shed, 1u);
}

TEST(Supervisor, AggregatesRecoveryCountersAcrossSessions)
{
    service::SupervisorOptions options;
    options.workers = 2;
    options.session.backoffBaseMs = 0;

    KcmOptions compile_options;
    compile_options.machine = options.session.machine;
    KcmSystem host(compile_options);
    host.consult(serviceProgram);

    service::Supervisor supervisor(options);
    for (int i = 0; i < 4; ++i) {
        service::QueryJob job;
        job.id = cat("q", i);
        job.goal = "sumto(500, S)";
        MachineConfig machine = options.session.machine;
        FaultAction fault;
        fault.cycle = 4000;
        fault.kind = FaultKind::InjectPageFault;
        machine.faultPlan.actions.push_back(fault);
        job.machine = machine;
        supervisor.submit(job, host.compileOnly(job.goal));
    }
    std::vector<service::ServiceResult> results = supervisor.drain();
    service::ServiceStats stats = supervisor.stats();

    for (const auto &res : results) {
        EXPECT_EQ(res.outcome.status, service::QueryStatus::Completed)
            << res.outcome.failure.classification;
        EXPECT_TRUE(res.outcome.success);
    }
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_GE(stats.retries + stats.restarts, 4u);
    EXPECT_GE(stats.checkpoints, 4u);
    EXPECT_GT(stats.recoveryCycles, 0u);
}

TEST(Supervisor, AsyncSaturationShedsDeterministicallyUnderLoad)
{
    // The always-on server's admission path: submitAsync() a burst
    // well past the queue bound while the workers are paused. The
    // shed callbacks must fire synchronously (before resume()) with
    // the structured "overloaded" classification, earliest deadline
    // first; every admitted query must still complete with the
    // deterministic answer once the workers run.
    service::SupervisorOptions options;
    options.workers = 2;
    options.maxQueueDepth = 4;
    options.startPaused = true;
    options.session.backoffBaseMs = 0;

    KcmOptions compile_options;
    compile_options.machine = options.session.machine;
    KcmSystem host(compile_options);
    host.consult(serviceProgram);
    CodeImage image = host.compileOnly("sumto(100, S)");

    service::Supervisor supervisor(options);
    std::mutex mutex;
    std::map<std::string, service::QueryOutcome> outcomes;

    const int burst = 12;
    for (int i = 0; i < burst; ++i) {
        service::QueryJob job;
        job.id = cat("q", i);
        job.goal = "sumto(100, S)";
        // Monotonically later deadlines: the earliest-deadline
        // eviction policy must shed q0..q7 in order and admit the
        // last maxQueueDepth submissions.
        job.deadlineMs = 1000 * uint64_t(i + 1);
        supervisor.submitAsync(
            job, image, [&, id = job.id](service::QueryOutcome out) {
                std::lock_guard<std::mutex> lock(mutex);
                outcomes[id] = std::move(out);
            });
    }

    // Workers are paused, so every shed decision has already been
    // delivered and exactly maxQueueDepth queries are still queued.
    {
        std::lock_guard<std::mutex> lock(mutex);
        ASSERT_EQ(outcomes.size(), size_t(burst) - 4);
        for (const auto &[id, out] : outcomes) {
            EXPECT_EQ(out.status, service::QueryStatus::Shed) << id;
            EXPECT_EQ(out.failure.classification, "overloaded") << id;
        }
        for (int i = 0; i < 8; ++i)
            EXPECT_TRUE(outcomes.count(cat("q", i)))
                << "q" << i << " should have been shed";
    }
    EXPECT_EQ(supervisor.queueDepth(), 4u);

    supervisor.resume();
    supervisor.drain();

    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(outcomes.size(), size_t(burst));
    for (int i = 8; i < burst; ++i) {
        const auto &out = outcomes[cat("q", i)];
        EXPECT_EQ(out.status, service::QueryStatus::Completed);
        ASSERT_TRUE(out.success);
        // sumto(100, S) -> S = 5050, deterministic on every worker.
        EXPECT_NE(out.solutions[0].toString().find("5050"),
                  std::string::npos);
    }
    service::ServiceStats stats = supervisor.stats();
    EXPECT_EQ(stats.shed, 8u);
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_EQ(stats.failed, 0u);
}

TEST(Supervisor, WarmTemplateAsyncMatchesColdImage)
{
    // The warm snapshot-template path the server's image cache uses:
    // a query warm-started from a post-download KCMSNAP2 template
    // must produce the same answer and the same simulated cycle count
    // as one cold-started from the compiled image.
    service::SupervisorOptions options;
    options.workers = 2;
    options.session.backoffBaseMs = 0;

    KcmOptions compile_options;
    compile_options.machine = options.session.machine;
    KcmSystem host(compile_options);
    host.consult(serviceProgram);
    CodeImage image = host.compileOnly("revsum(15, S)");

    auto tmpl = std::make_shared<const Snapshot>([&] {
        Machine machine(options.session.machine);
        machine.load(image);
        return takeSnapshot(machine);
    }());

    service::Supervisor supervisor(options);
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<service::QueryOutcome> warm_outcomes;
    const int warm_runs = 4;
    for (int i = 0; i < warm_runs; ++i) {
        service::QueryJob job;
        job.id = cat("warm", i);
        job.goal = "revsum(15, S)";
        supervisor.submitAsync(
            job, tmpl, [&](service::QueryOutcome out) {
                std::lock_guard<std::mutex> lock(mutex);
                warm_outcomes.push_back(std::move(out));
                cv.notify_all();
            });
    }
    service::QueryJob cold;
    cold.id = "cold";
    cold.goal = "revsum(15, S)";
    supervisor.submit(cold, image);
    std::vector<service::ServiceResult> results = supervisor.drain();

    ASSERT_EQ(results.size(), 1u);
    const service::QueryOutcome &cold_out = results[0].outcome;
    ASSERT_EQ(cold_out.status, service::QueryStatus::Completed);
    ASSERT_TRUE(cold_out.success);

    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(warm_outcomes.size(), size_t(warm_runs));
    for (const auto &out : warm_outcomes) {
        ASSERT_EQ(out.status, service::QueryStatus::Completed);
        ASSERT_TRUE(out.success);
        EXPECT_EQ(out.solutions[0].toString(),
                  cold_out.solutions[0].toString());
        EXPECT_EQ(out.cycles, cold_out.cycles)
            << "warm restore must be invisible to simulated time";
    }
}

// ------------------------------------- absolute deadline propagation

TEST(Session, AbsoluteDeadlineTerminatesRunawayWithCyclesSpent)
{
    // The propagated client deadline: "loop" never finishes, so the
    // session must stop *itself* at the boundary — terminally (no
    // retries, unlike the per-attempt deadlineMs) and reporting the
    // simulated cycles it burned before giving up.
    service::SessionOptions options;
    options.checkpointEveryMcycles = 1;
    options.watchdogSliceCycles = 100'000;
    // Wide enough that compile + setup on a loaded (sanitized) host
    // cannot burn the whole budget before the first slice runs.
    options.deadlineAbsNs = steadyNowNs() + 300'000'000ull; // +300ms
    service::QueryOutcome out = runSession("loop", options);

    EXPECT_EQ(out.status, service::QueryStatus::Failed);
    EXPECT_EQ(out.failure.classification, "deadline_exceeded");
    EXPECT_EQ(out.failure.attempts, 1u)
        << "an absolute deadline is terminal: no retry may extend it";
    EXPECT_GT(out.cycles, 0u)
        << "the reply must carry the cycles spent before expiry";
}

TEST(Session, AbsoluteDeadlineShorterThanOneGovernorSlice)
{
    // With checkpoints off and a 2-Gcycle watchdog slice, the governor
    // would run "loop" for minutes before the first slice boundary.
    // The deadline-to-cycle-slice conversion must cut the slice down
    // to the remaining wall budget so the query still stops in a
    // fraction of a second, far short of one configured slice. The
    // budget is generous enough that it cannot fully elapse between
    // here and session start on a loaded host (which would legally
    // yield the zero-cycle pre-execution shed instead).
    service::SessionOptions options;
    options.checkpointEveryMcycles = 0;
    options.watchdogSliceCycles = 2'000'000'000;
    options.deadlineAbsNs = steadyNowNs() + 300'000'000ull; // +300ms
    service::QueryOutcome out = runSession("loop", options);

    EXPECT_EQ(out.status, service::QueryStatus::Failed);
    EXPECT_EQ(out.failure.classification, "deadline_exceeded");
    EXPECT_GT(out.cycles, 0u);
    EXPECT_LT(out.cycles, 2'000'000'000u)
        << "the session must never run a full configured slice past "
           "its deadline";
}

TEST(Session, ExpiredAbsoluteDeadlineFailsBeforeExecution)
{
    // A deadline already in the past (the server maps those to the
    // sentinel 1ns) must shed before the machine runs at all.
    service::SessionOptions options;
    options.deadlineAbsNs = 1;
    service::QueryOutcome out = runSession("sumto(10, S)", options);

    EXPECT_EQ(out.status, service::QueryStatus::Failed);
    EXPECT_EQ(out.failure.classification, "deadline_exceeded");
    EXPECT_EQ(out.cycles, 0u);
}

TEST(Session, GenerousAbsoluteDeadlineIsInvisibleToSimulatedMetrics)
{
    // Deadline slices interleave with checkpoint boundaries; when the
    // deadline is not hit, neither may perturb the simulated answer.
    const char *goal = "itc(300, 0, S)";
    service::SessionOptions plain;
    plain.checkpointEveryMcycles = 1;
    service::QueryOutcome base = runSession(goal, plain);
    ASSERT_EQ(base.status, service::QueryStatus::Completed);

    service::SessionOptions guarded;
    guarded.checkpointEveryMcycles = 1;
    guarded.deadlineAbsNs = steadyNowNs() + 60'000'000'000ull; // +60s
    service::QueryOutcome out = runSession(goal, guarded);

    ASSERT_EQ(out.status, service::QueryStatus::Completed);
    ASSERT_TRUE(out.success);
    EXPECT_EQ(out.solutions[0].toString(),
              base.solutions[0].toString());
    EXPECT_EQ(out.cycles, base.cycles);
    EXPECT_GT(out.counters.checkpoints, 0u);
}

TEST(Session, CancelTokenStopsAtInstructionBoundary)
{
    // The hedging loser path: an external cancel must stop a runaway
    // query cleanly, classified "cancelled", without a hang.
    auto cancel = std::make_shared<std::atomic<bool>>(false);
    std::thread canceller([cancel] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        cancel->store(true, std::memory_order_relaxed);
    });

    service::SessionOptions options;
    options.watchdogSliceCycles = 100'000;
    options.cancel = cancel;
    service::QueryOutcome out = runSession("loop", options);
    canceller.join();

    EXPECT_EQ(out.status, service::QueryStatus::Failed);
    EXPECT_EQ(out.failure.classification, "cancelled");
}

// --------------------------------------- per-query memory governance

TEST(Service, MemoryBudgetTrapsIdenticallyOnBothCores)
{
    // A 1 MiB per-query byte ceiling: building a 200k-element list
    // needs several MiB of global zone, so growth crosses the budget.
    // Both simulator cores must classify it resource_error(memory)
    // with bit-identical simulated metrics.
    auto run = [](bool fast) {
        KcmOptions options;
        options.machine.fastDispatch = fast;
        options.machine.governor.memoryBudgetBytes = 1u << 20;
        KcmSystem system(options);
        system.consult(serviceProgram);
        return system.query("mklist(200000, L)");
    };
    QueryResult fast = run(true);
    QueryResult oracle = run(false);

    EXPECT_FALSE(fast.success);
    ASSERT_TRUE(fast.trapped);
    EXPECT_NE(fast.error.find("resource_error(memory)"),
              std::string::npos)
        << fast.error;
    EXPECT_EQ(fast.trapped, oracle.trapped);
    EXPECT_EQ(fast.error, oracle.error);
    EXPECT_EQ(fast.cycles, oracle.cycles);
    EXPECT_EQ(fast.instructions, oracle.instructions);
}

TEST(Service, MemoryBudgetBallIsCatchable)
{
    // resource_error(memory) is an ordinary catchable ball, like the
    // cycle-budget abort: a guarded program recovers and completes.
    auto run = [](bool fast) {
        KcmOptions options;
        options.machine.fastDispatch = fast;
        options.machine.governor.memoryBudgetBytes = 1u << 20;
        KcmSystem system(options);
        system.consult(serviceProgram);
        return system.query(
            "catch(mklist(200000, _), resource_error(E), true)");
    };
    QueryResult fast = run(true);
    QueryResult oracle = run(false);

    ASSERT_TRUE(fast.success) << fast.error;
    EXPECT_FALSE(fast.trapped);
    ASSERT_EQ(fast.solutions.size(), 1u);
    EXPECT_NE(fast.solutions[0].toString().find("E = memory"),
              std::string::npos)
        << fast.solutions[0].toString();
    ASSERT_TRUE(oracle.success);
    EXPECT_EQ(fast.solutions[0].toString(),
              oracle.solutions[0].toString());
    EXPECT_EQ(fast.cycles, oracle.cycles);
}

TEST(Service, BaselineInterpreterAgreesOnMemoryBudget)
{
    // The differential oracle honours the same ceiling with the same
    // ball, both uncaught and caught.
    baseline::Interpreter doomed;
    doomed.setMemoryBudgetBytes(1u << 20);
    doomed.consult(serviceProgram);
    baseline::InterpResult blown = doomed.query("mklist(200000, L)", 1);
    EXPECT_FALSE(blown.success);
    EXPECT_NE(blown.error.find("resource_error(memory)"),
              std::string::npos)
        << blown.error;

    baseline::Interpreter guarded;
    guarded.setMemoryBudgetBytes(1u << 20);
    guarded.consult(serviceProgram);
    baseline::InterpResult caught = guarded.query(
        "catch(mklist(200000, _), resource_error(E), true)", 1);
    ASSERT_TRUE(caught.success) << caught.error;
    ASSERT_EQ(caught.solutions.size(), 1u);
    EXPECT_NE(caught.solutions[0].toString().find("E = memory"),
              std::string::npos);
}

TEST(Session, MemoryBudgetFailureIsClassified)
{
    service::SessionOptions options;
    options.maxRetries = 0;
    options.machine.governor.memoryBudgetBytes = 1u << 20;
    service::QueryOutcome out =
        runSession("mklist(200000, L)", options);

    EXPECT_EQ(out.status, service::QueryStatus::Failed);
    EXPECT_EQ(out.failure.classification, "resource_error(memory)")
        << out.failure.classification;
}

// ------------------------------- supervisor self-defense: admission

TEST(Supervisor, UnmeetableDeadlineShedsAtAdmission)
{
    // A deadline already expired at submit time must be refused at
    // the door — classified deadline_exceeded with zero cycles spent,
    // counted as a propagated shed — while a healthy sibling runs.
    service::SupervisorOptions options;
    options.workers = 1;
    options.startPaused = true;
    options.session.backoffBaseMs = 0;

    KcmOptions compile_options;
    compile_options.machine = options.session.machine;
    KcmSystem host(compile_options);
    host.consult(serviceProgram);
    CodeImage image = host.compileOnly("sumto(100, S)");

    service::Supervisor supervisor(options);
    service::QueryJob dead;
    dead.id = "dead";
    dead.goal = "sumto(100, S)";
    dead.deadlineAbsNs = 1;
    supervisor.submit(dead, image);
    service::QueryJob live;
    live.id = "live";
    live.goal = "sumto(100, S)";
    supervisor.submit(live, image);
    supervisor.resume();
    std::vector<service::ServiceResult> results = supervisor.drain();
    service::ServiceStats stats = supervisor.stats();

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].outcome.status, service::QueryStatus::Failed);
    EXPECT_EQ(results[0].outcome.failure.classification,
              "deadline_exceeded");
    EXPECT_EQ(results[0].outcome.cycles, 0u);
    EXPECT_EQ(results[1].outcome.status,
              service::QueryStatus::Completed);
    EXPECT_EQ(stats.deadlinePropagatedSheds, 1u);
    EXPECT_EQ(stats.completed, 1u);
}

TEST(Supervisor, GlobalMemoryBudgetRefusesAdmission)
{
    // Aggregate admission control: with a 64 MiB global budget and
    // the default 32 MiB per-query charge, the third concurrent
    // admission must be refused ("overloaded"), and the charge gauge
    // must drain back to zero once the admitted queries retire.
    service::SupervisorOptions options;
    options.workers = 1;
    options.startPaused = true;
    options.globalMemoryBudgetBytes = 64ull << 20;
    options.session.backoffBaseMs = 0;

    KcmOptions compile_options;
    compile_options.machine = options.session.machine;
    KcmSystem host(compile_options);
    host.consult(serviceProgram);
    CodeImage image = host.compileOnly("sumto(100, S)");

    service::Supervisor supervisor(options);
    for (int i = 0; i < 3; ++i) {
        service::QueryJob job;
        job.id = cat("q", i);
        job.goal = "sumto(100, S)";
        supervisor.submit(job, image);
    }
    EXPECT_EQ(supervisor.stats().memAdmissionRefusals, 1u);
    EXPECT_EQ(supervisor.stats().memChargedBytes, 64ull << 20);

    supervisor.resume();
    std::vector<service::ServiceResult> results = supervisor.drain();
    service::ServiceStats stats = supervisor.stats();

    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].outcome.status,
              service::QueryStatus::Completed);
    EXPECT_EQ(results[1].outcome.status,
              service::QueryStatus::Completed);
    EXPECT_EQ(results[2].outcome.status, service::QueryStatus::Shed);
    EXPECT_EQ(results[2].outcome.failure.classification, "overloaded");
    EXPECT_EQ(stats.memChargedBytes, 0u)
        << "charges must be released as queries retire";
}

TEST(Supervisor, PerJobMemoryBudgetAbortIsCounted)
{
    service::SupervisorOptions options;
    options.workers = 1;
    options.session.backoffBaseMs = 0;
    options.session.maxRetries = 0;

    KcmOptions compile_options;
    compile_options.machine = options.session.machine;
    KcmSystem host(compile_options);
    host.consult(serviceProgram);

    service::Supervisor supervisor(options);
    service::QueryJob job;
    job.id = "hog";
    job.goal = "mklist(200000, L)";
    MachineConfig machine = options.session.machine;
    machine.governor.memoryBudgetBytes = 1u << 20;
    job.machine = machine;
    supervisor.submit(job, host.compileOnly(job.goal));
    std::vector<service::ServiceResult> results = supervisor.drain();
    service::ServiceStats stats = supervisor.stats();

    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].outcome.status, service::QueryStatus::Failed);
    EXPECT_EQ(results[0].outcome.failure.classification,
              "resource_error(memory)");
    EXPECT_EQ(stats.memAborts, 1u);
}

// --------------------------------------------------- hedged retries

TEST(Supervisor, HedgedStragglerLosesToBitIdenticalDuplicate)
{
    // A worker degraded by the chaos slice delay straggles; past the
    // hedge threshold the monitor launches a clean duplicate, which
    // finishes first and must deliver the *same* answer and simulated
    // cycle count a plain run produces — hedging is a latency tool,
    // never a semantics tool.
    const char *goal = "itc(300, 0, S)";
    service::SessionOptions plain;
    plain.checkpointEveryMcycles = 1;
    service::QueryOutcome base = runSession(goal, plain);
    ASSERT_EQ(base.status, service::QueryStatus::Completed);

    service::SupervisorOptions options;
    options.workers = 2;
    options.hedgeMinMs = 20;
    options.hedgePollMs = 1;
    options.session.backoffBaseMs = 0;
    options.session.checkpointEveryMcycles = 1;

    KcmOptions compile_options;
    compile_options.machine = options.session.machine;
    KcmSystem host(compile_options);
    host.consult(serviceProgram);
    CodeImage image = host.compileOnly(goal);

    service::Supervisor supervisor(options);
    std::mutex mutex;
    std::condition_variable cv;
    bool have_outcome = false;
    service::QueryOutcome hedged;

    service::QueryJob job;
    job.id = "straggler";
    job.goal = goal;
    job.shapeKey = 42;
    job.chaosSliceDelayUs = 40'000; // 40ms per governor slice
    supervisor.submitAsync(job, image,
                           [&](service::QueryOutcome out) {
                               std::lock_guard<std::mutex> lock(mutex);
                               hedged = std::move(out);
                               have_outcome = true;
                               cv.notify_all();
                           });
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return have_outcome; });
    }
    supervisor.drain();
    service::ServiceStats stats = supervisor.stats();

    ASSERT_EQ(hedged.status, service::QueryStatus::Completed);
    ASSERT_TRUE(hedged.success);
    EXPECT_EQ(hedged.solutions[0].toString(),
              base.solutions[0].toString());
    EXPECT_EQ(hedged.cycles, base.cycles)
        << "a hedged attempt must be bit-identical to the primary";
    EXPECT_GE(stats.hedges, 1u);
    EXPECT_GE(stats.hedgeWins, 1u)
        << "the clean duplicate must beat a 40ms-per-slice straggler";
    EXPECT_EQ(stats.completed, 1u)
        << "only the winning attempt may be delivered or counted";
}

TEST(Supervisor, HedgeCancellationRacesCompletionCleanly)
{
    // Primary and hedge finishing near-simultaneously: whichever wins
    // the delivery race, exactly one outcome per job arrives, with
    // the deterministic answer — and the loser's cancellation must
    // never deadlock or double-deliver (run under TSan in CI).
    const char *goal = "itc(120, 0, S)";
    service::SupervisorOptions options;
    options.workers = 6;
    options.hedgeMinMs = 3;
    options.hedgePollMs = 1;
    options.session.backoffBaseMs = 0;
    options.session.checkpointEveryMcycles = 1;

    KcmOptions compile_options;
    compile_options.machine = options.session.machine;
    KcmSystem host(compile_options);
    host.consult(serviceProgram);
    CodeImage image = host.compileOnly(goal);

    service::Supervisor supervisor(options);
    std::mutex mutex;
    std::map<std::string, int> deliveries;
    std::map<std::string, service::QueryOutcome> outcomes;
    const int jobs = 2;
    for (int i = 0; i < jobs; ++i) {
        service::QueryJob job;
        job.id = cat("q", i);
        job.goal = goal;
        job.shapeKey = 7;
        job.chaosSliceDelayUs = 4'000; // mild straggle: a close race
        supervisor.submitAsync(
            job, image, [&, id = job.id](service::QueryOutcome out) {
                std::lock_guard<std::mutex> lock(mutex);
                ++deliveries[id];
                outcomes[id] = std::move(out);
            });
    }
    supervisor.drain();

    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(outcomes.size(), size_t(jobs));
    for (const auto &[id, count] : deliveries)
        EXPECT_EQ(count, 1) << id << " must be delivered exactly once";
    for (const auto &[id, out] : outcomes) {
        ASSERT_EQ(out.status, service::QueryStatus::Completed) << id;
        ASSERT_TRUE(out.success);
        EXPECT_NE(out.solutions[0].toString().find("2412000"),
                  std::string::npos)
            << id << ": " << out.solutions[0].toString();
    }
}
