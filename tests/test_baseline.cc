/**
 * @file
 * Reference-interpreter (baseline) unit tests. The interpreter's
 * correctness matters doubly: it is the differential oracle for the
 * machine.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "baseline/interp.hh"

using namespace kcm;
using baseline::Interpreter;

namespace
{

baseline::InterpResult
run(const std::string &program, const std::string &goal,
    size_t max_solutions = 1)
{
    Interpreter interp;
    if (!program.empty())
        interp.consult(program);
    return interp.query(goal, max_solutions);
}

} // namespace

TEST(Baseline, FactsAndRules)
{
    auto result = run("p(a). p(b). q(X) :- p(X).", "q(X)", 10);
    ASSERT_EQ(result.solutions.size(), 2u);
    EXPECT_EQ(result.solutions[0].toString(), "X = a");
}

TEST(Baseline, UnificationBindsBothWays)
{
    auto result = run("", "f(X, b) = f(a, Y)");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.solutions[0].toString(), "X = a, Y = b");
}

TEST(Baseline, CutPrunesClauseAlternatives)
{
    auto result = run("p(1). p(2).\nfirst(X) :- p(X), !.", "first(X)", 10);
    EXPECT_EQ(result.solutions.size(), 1u);
}

TEST(Baseline, CutInsideCalleeDoesNotCutCaller)
{
    const char *program =
        "inner(1) :- !.\n"
        "inner(2).\n"
        "outer(X, Y) :- member_(X, [a,b]), inner(Y).\n"
        "member_(X, [X|_]).\n"
        "member_(X, [_|T]) :- member_(X, T).\n";
    auto result = run(program, "outer(X, Y)", 10);
    // inner yields only 1, but outer still enumerates both members.
    EXPECT_EQ(result.solutions.size(), 2u);
}

TEST(Baseline, NegationScopesItsOwnCut)
{
    auto result = run("p(1).", "\\+ (p(X), X > 1)");
    EXPECT_TRUE(result.success);
}

TEST(Baseline, ArithmeticAndComparisons)
{
    EXPECT_TRUE(run("", "X is 2 + 3, X =:= 5").success);
    EXPECT_FALSE(run("", "1 > 2").success);
    EXPECT_FALSE(run("", "X is 1 // 0").success);
}

TEST(Baseline, InferenceCountingCountsGoals)
{
    const char *program =
        "append([], L, L).\n"
        "append([H|T], L, [H|R]) :- append(T, L, R).\n";
    auto result = run(program, "append([1,2,3], [4], X)");
    ASSERT_TRUE(result.success);
    // 4 append invocations; conjunctions are not counted.
    EXPECT_EQ(result.inferences, 4u);
}

TEST(Baseline, OutputCapture)
{
    auto result = run("", "write(hi), nl, write([1,2])");
    EXPECT_EQ(result.output, "hi\n[1,2]");
}

TEST(Baseline, WallClockIsMeasured)
{
    auto result = run(
        "loop(0). loop(N) :- M is N - 1, loop(M).", "loop(2000)");
    EXPECT_TRUE(result.success);
    EXPECT_GT(result.seconds, 0.0);
}

TEST(Baseline, UndefinedPredicateFailsQuietly)
{
    setLoggingEnabled(false);
    auto result = run("p(a).", "missing(1)");
    setLoggingEnabled(true);
    EXPECT_FALSE(result.success);
}

TEST(Baseline, FunctorArgBuiltins)
{
    EXPECT_TRUE(run("", "functor(f(a,b), f, 2)").success);
    auto result = run("", "arg(2, t(x,y,z), A)");
    EXPECT_EQ(result.solutions[0].toString(), "A = y");
    auto built = run("", "functor(T, g, 3)");
    EXPECT_TRUE(built.success);
}

TEST(Baseline, StructuralOrder)
{
    EXPECT_TRUE(run("", "a @< b, 1 @< a, f(a) @> b").success);
    EXPECT_TRUE(run("", "f(1,2) == f(1,2), f(1) \\== g(1)").success);
}

TEST(Baseline, IfThenElseCommitsToFirstConditionSolution)
{
    const char *program = "p(1). p(2).";
    auto result = run(program, "(p(X) -> Y = yes ; Y = no)", 10);
    // Committed to X = 1; only one solution.
    ASSERT_EQ(result.solutions.size(), 1u);
    EXPECT_EQ(result.solutions[0].toString(), "X = 1, Y = yes");
}

TEST(Baseline, DeepBacktrackingRestoresBindings)
{
    const char *program =
        "pair(X, Y) :- one(X), two(Y).\n"
        "one(a). one(b).\n"
        "two(1). two(2).\n";
    auto result = run(program, "pair(X, Y)", 10);
    ASSERT_EQ(result.solutions.size(), 4u);
    EXPECT_EQ(result.solutions[0].toString(), "X = a, Y = 1");
    EXPECT_EQ(result.solutions[3].toString(), "X = b, Y = 2");
}
