/**
 * @file
 * Randomized differential testing: generate random unification
 * problems, arithmetic chains and small nondeterministic databases;
 * the KCM simulator and the reference interpreter must agree on every
 * one of them. Each case is also run on both simulator execution
 * cores (predecoded fast path and decode-per-step oracle), which must
 * agree bit-for-bit on solutions, cycles and inferences.
 */

#include <cctype>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "baseline/interp.hh"
#include "core/machine.hh"
#include "core/predecode.hh"
#include "core/snapshot.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

/** Random ground-ish term generator. */
class TermGen
{
  public:
    explicit TermGen(unsigned seed) : rng_(seed) {}

    /** A term over a small signature; depth-bounded. */
    std::string
    term(int depth, int num_vars)
    {
        int pick = int(dist_(rng_) % (depth > 0 ? 6 : 3));
        switch (pick) {
          case 0:
            return std::to_string(dist_(rng_) % 10);
          case 1: {
            static const char *atoms[] = {"a", "b", "c", "foo"};
            return atoms[dist_(rng_) % 4];
          }
          case 2:
            if (num_vars > 0)
                return "V" + std::to_string(dist_(rng_) % num_vars);
            return "z";
          case 3: {
            std::ostringstream os;
            os << "f(" << term(depth - 1, num_vars) << ","
               << term(depth - 1, num_vars) << ")";
            return os.str();
          }
          case 4: {
            std::ostringstream os;
            os << "g(" << term(depth - 1, num_vars) << ")";
            return os.str();
          }
          default: {
            std::ostringstream os;
            os << "[" << term(depth - 1, num_vars) << ","
               << term(depth - 1, num_vars) << "]";
            return os.str();
          }
        }
    }

    unsigned
    pick(unsigned bound)
    {
        return dist_(rng_) % bound;
    }

  private:
    std::mt19937 rng_;
    std::uniform_int_distribution<unsigned> dist_;
};

/**
 * Normalize variable numbering (_123 -> _V): fresh-variable numbers
 * come from a process-global counter, so two runs in one process
 * (even of the very same engine) number their variables differently.
 */
std::string
stripVarNumbers(const std::string &s)
{
    std::string out;
    for (size_t i = 0; i < s.size();) {
        bool at_var = s[i] == '_' && i + 1 < s.size() &&
                      std::isdigit(static_cast<unsigned char>(s[i + 1])) &&
                      (i == 0 || !std::isalnum(
                                     static_cast<unsigned char>(s[i - 1])));
        if (at_var) {
            out += "_V";
            ++i;
            while (i < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[i]))) {
                ++i;
            }
        } else {
            out += s[i++];
        }
    }
    return out;
}

void
compareOnce(const std::string &program, const std::string &goal,
            const KcmOptions &base_options = {})
{
    KcmOptions options = base_options;
    options.maxSolutions = 8;
    options.machine.fastDispatch = true;
    KcmSystem machine_system(options);
    if (!program.empty())
        machine_system.consult(program);
    QueryResult machine_result = machine_system.query(goal);

    // The same problem on the decode-per-step oracle core: everything
    // simulated must be bit-identical to the fast path.
    KcmOptions oracle_options = options;
    oracle_options.machine.fastDispatch = false;
    KcmSystem oracle_system(oracle_options);
    if (!program.empty())
        oracle_system.consult(program);
    QueryResult oracle_result = oracle_system.query(goal);

    ASSERT_EQ(machine_result.success, oracle_result.success)
        << "fast/oracle cores disagree on success of: " << goal
        << "\nprogram:\n" << program;
    ASSERT_EQ(machine_result.solutions.size(),
              oracle_result.solutions.size())
        << "fast/oracle solution counts differ for: " << goal
        << "\nprogram:\n" << program;
    for (size_t i = 0; i < machine_result.solutions.size(); ++i) {
        ASSERT_EQ(stripVarNumbers(machine_result.solutions[i].toString()),
                  stripVarNumbers(oracle_result.solutions[i].toString()))
            << "fast/oracle solution " << i << " differs for: " << goal;
    }
    ASSERT_EQ(machine_result.cycles, oracle_result.cycles)
        << "fast/oracle cycle counts differ for: " << goal
        << "\nprogram:\n" << program;
    ASSERT_EQ(machine_result.inferences, oracle_result.inferences)
        << "fast/oracle inference counts differ for: " << goal
        << "\nprogram:\n" << program;

    // Trapping inputs are kept, not discarded: both cores must trap
    // identically — same kind, same faulting PC, same cycle.
    ASSERT_EQ(machine_result.trapped, oracle_result.trapped)
        << "fast/oracle cores disagree on trapping for: " << goal
        << "\nfast: " << machine_result.error
        << "\noracle: " << oracle_result.error;
    if (machine_result.trapped) {
        ASSERT_EQ(machine_result.trap.kind, oracle_result.trap.kind)
            << "fast: " << machine_result.error
            << "\noracle: " << oracle_result.error;
        ASSERT_EQ(machine_result.trap.pc, oracle_result.trap.pc)
            << goal;
        ASSERT_EQ(machine_result.trap.cycle, oracle_result.trap.cycle)
            << goal;
        ASSERT_EQ(machine_result.trap.instructions,
                  oracle_result.trap.instructions)
            << goal;
        // The baseline interpreter has no machine-trap semantics (no
        // cycle budget, no zones), so resource traps stop here — but
        // an uncaught throw/1 is a language-level outcome the
        // baseline models too, so that comparison continues below.
        if (machine_result.trap.kind != TrapKind::UnhandledException)
            return;
    }

    baseline::Interpreter interp;
    if (!program.empty())
        interp.consult(program);
    baseline::InterpResult interp_result = interp.query(goal, 8);

    ASSERT_EQ(machine_result.success, interp_result.success)
        << "goal: " << goal << "\nprogram:\n" << program;
    ASSERT_EQ(machine_result.solutions.size(),
              interp_result.solutions.size())
        << "goal: " << goal << "\nprogram:\n" << program;
    ASSERT_EQ(stripVarNumbers(machine_result.error),
              stripVarNumbers(interp_result.error))
        << "machine/baseline uncaught-ball terms differ for: " << goal
        << "\nprogram:\n" << program;
}

} // namespace

class FuzzUnify : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FuzzUnify, RandomUnificationProblems)
{
    TermGen gen(GetParam());
    for (int i = 0; i < 12; ++i) {
        // The right-hand side is ground: both engines are
        // occurs-check-free, so var-on-both-sides problems can create
        // cyclic terms and diverge.
        std::string lhs = gen.term(3, 3);
        std::string rhs = gen.term(3, 0);
        compareOnce("", "V0 = V0, " + lhs + " = " + rhs);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzUnify, ::testing::Range(1u, 9u));

class FuzzDatabase : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FuzzDatabase, RandomFactsAndQueries)
{
    TermGen gen(GetParam() * 977);
    // A small random database of p/2 facts plus one rule.
    std::ostringstream program;
    for (int i = 0; i < 6; ++i) {
        program << "p(" << gen.term(2, 0) << ", " << gen.term(2, 0)
                << ").\n";
    }
    program << "q(X, Y) :- p(X, Y).\n";
    program << "q(X, X) :- p(X, _).\n";

    for (int i = 0; i < 8; ++i) {
        std::string goal = "q(" + gen.term(2, 2) + ", V0)";
        compareOnce(program.str(), goal);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDatabase, ::testing::Range(1u, 7u));

class FuzzArith : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FuzzArith, RandomArithmeticChains)
{
    TermGen gen(GetParam() * 7919);
    static const char *ops[] = {"+", "-", "*", "//", "mod"};
    for (int i = 0; i < 20; ++i) {
        // Build X is ((a op b) op c) with small constants; division by
        // zero legitimately fails on both engines.
        std::ostringstream goal;
        goal << "X is ((" << 1 + gen.pick(9) << " " << ops[gen.pick(5)]
             << " " << 1 + gen.pick(9) << ") " << ops[gen.pick(5)] << " "
             << 1 + gen.pick(9) << ")";
        compareOnce("", goal.str());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzArith, ::testing::Range(1u, 7u));

class FuzzControl : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FuzzControl, RandomConjunctionsWithCutAndDisjunction)
{
    TermGen gen(GetParam() * 31337);
    const char *database =
        "p(1). p(2). p(3).\n"
        "r(2). r(3).\n";
    for (int i = 0; i < 12; ++i) {
        std::ostringstream goal;
        goal << "p(V0)";
        if (gen.pick(2))
            goal << ", V0 > " << gen.pick(3);
        switch (gen.pick(3)) {
          case 0:
            goal << ", !";
            break;
          case 1:
            goal << ", (r(V0) ; V0 = 1)";
            break;
          default:
            goal << ", \\+ r(V0)";
            break;
        }
        compareOnce(database, goal.str());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzControl, ::testing::Range(1u, 7u));

class FuzzResource : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FuzzResource, TinyBudgetsAndQuotasTrapIdentically)
{
    TermGen gen(GetParam() * 104729);
    const char *database =
        "mklist(0, []).\n"
        "mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).\n"
        "len([], 0).\n"
        "len([_|T], N) :- len(T, M), N is M + 1.\n";
    for (int i = 0; i < 6; ++i) {
        // A random mix of tiny cycle budgets and heap quotas: many of
        // these runs end in abort or stack_overflow traps, the rest
        // complete. Either way both cores must agree exactly.
        KcmOptions options;
        options.machine.governor.cycleBudget = 500 + gen.pick(4000);
        if (gen.pick(2))
            options.machine.governor.globalQuotaWords =
                32 + gen.pick(64);
        if (gen.pick(2))
            options.machine.governor.growStacks = false;
        std::string goal = "mklist(" + std::to_string(10 + gen.pick(60)) +
                           ", L), len(L, N)";
        compareOnce(database, goal, options);
    }
}

TEST_P(FuzzResource, InjectedFaultsTrapIdentically)
{
    TermGen gen(GetParam() * 130363);
    const char *database =
        "mklist(0, []).\n"
        "mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).\n";
    for (int i = 0; i < 6; ++i) {
        // Arm a page fault at a random cycle; queries that finish
        // earlier run clean, the rest take a PageFault trap — at the
        // identical point on both cores.
        KcmOptions options;
        FaultAction fault;
        fault.cycle = gen.pick(3000);
        fault.kind = FaultKind::InjectPageFault;
        options.machine.faultPlan.actions.push_back(fault);
        std::string goal =
            "mklist(" + std::to_string(5 + gen.pick(40)) + ", L)";
        compareOnce(database, goal, options);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzResource, ::testing::Range(1u, 7u));

class FuzzExceptions : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FuzzExceptions, CatchThrowAgreesEverywhere)
{
    TermGen gen(GetParam() * 179426549);
    // All throws happen inside the protected goal and all balls are
    // ground: cutting away a catch marker and then throwing is the
    // one scoping corner where the machine (choicepoint marker) and
    // the baseline (C++ try block) legitimately differ.
    const char *database =
        "p(1). p(2). p(3).\n"
        "boom(N) :- p(X), X >= N, throw(ball(X)).\n"
        "boom(_).\n"
        "safe(N, R) :- catch(boom(N), ball(V), R = caught(V)).\n"
        "safe(_, none).\n";
    for (int i = 0; i < 10; ++i) {
        unsigned k = 1 + gen.pick(5); // 4,5 never throw: boom/1 falls through
        std::ostringstream goal;
        switch (gen.pick(6)) {
          case 0: // transparent barrier: catcher never matches the ball
            goal << "catch(p(V0), nomatch, V1 = no)";
            break;
          case 1: // plain delivery (or clean fall-through for big k)
            goal << "catch(boom(" << k << "), ball(V0), V1 = got(V0))";
            break;
          case 2: // inner catcher mismatches, outer receives the ball
            goal << "catch(catch(boom(" << k << "), wrong(V0), V1 = inner),"
                 << " ball(V2), V3 = outer)";
            break;
          case 3: // throw of a freshly built compound, caught directly
            goal << "catch(throw(t(" << k << ")), t(V0), p(V0))";
            break;
          case 4: // cut inside the protected goal, then maybe a throw
            goal << "catch((p(V0), !, boom(" << k << ")), ball(V1),"
                 << " V2 = cut_case)";
            break;
          default: // user-level default via two safe/2 clauses
            goal << "safe(" << k << ", V0)";
            break;
        }
        if (gen.pick(2))
            goal << ", p(V4)"; // backtrack through the used-up barrier
        compareOnce(database, goal.str());
    }
}

TEST_P(FuzzExceptions, UncaughtBallsAgreeEverywhere)
{
    TermGen gen(GetParam() * 15485863);
    const char *database = "p(1). p(2). p(3).\n";
    for (int i = 0; i < 8; ++i) {
        // Ground ball, no catcher anywhere (or a never-matching one):
        // both cores trap UnhandledException at the identical cycle
        // and the baseline formats the identical ball term.
        std::string ball = gen.term(2, 0);
        std::ostringstream goal;
        if (gen.pick(2))
            goal << "p(V0), throw(" << ball << ")";
        else
            goal << "catch(throw(" << ball << "), nomatch, V0 = no)";
        compareOnce(database, goal.str());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzExceptions, ::testing::Range(1u, 7u));

class FuzzFusion : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FuzzFusion, ProfiledFusionAgreesWithUnfusedAndBaseline)
{
    TermGen gen(GetParam() * 86028121);
    // List/structure walkers over random data: the shapes whose
    // get/unify/put/execute chains the superinstruction catalog
    // fuses. Each case runs fusion-off and fusion-profiled (selection
    // from a profiling run of the same query); both are held to the
    // oracle and the baseline by compareOnce, and to each other on
    // every simulated cycle.
    const char *database =
        "rev([], A, A).\n"
        "rev([H|T], A, R) :- rev(T, [H|A], R).\n"
        "walk([]).\n"
        "walk([_|T]) :- walk(T).\n"
        "tree(leaf).\n"
        "tree(node(L, _, R)) :- tree(L), tree(R).\n"
        "member(X, [X|_]).\n"
        "member(X, [_|T]) :- member(X, T).\n";
    for (int i = 0; i < 6; ++i) {
        std::ostringstream list;
        list << "[";
        unsigned n = 2 + gen.pick(6);
        for (unsigned j = 0; j < n; ++j)
            list << (j ? "," : "") << gen.term(2, 0);
        list << "]";

        std::ostringstream goal;
        switch (gen.pick(3)) {
          case 0:
            goal << "rev(" << list.str() << ", [], V0), walk(V0)";
            break;
          case 1:
            goal << "member(V0, " << list.str() << ")";
            break;
          default:
            goal << "rev(" << list.str()
                 << ", [], V0), member(" << gen.term(2, 0) << ", V0)";
            break;
        }

        KcmOptions off_options;
        off_options.machine.fusion.mode = FusionConfig::Mode::Off;
        compareOnce(database, goal.str(), off_options);

        // Profile-guided selection from an instrumented unfused run
        // of the very same query.
        KcmOptions prof_options;
        prof_options.machine.fusion.mode = FusionConfig::Mode::Off;
        prof_options.machine.profile = true;
        prof_options.machine.profileSequences = true;
        KcmSystem prof_system(prof_options);
        prof_system.consult(database);
        prof_system.query(goal.str());

        KcmOptions fused_options;
        fused_options.machine.fusion.mode = FusionConfig::Mode::Profiled;
        fused_options.machine.fusion.sequences =
            selectFusedSequences(prof_system.machine().profiler(), 12);
        compareOnce(database, goal.str(), fused_options);

        // Direct off-vs-profiled check on the simulated run (both
        // already matched the oracle; this pins them to each other).
        KcmSystem off_system(off_options);
        off_system.consult(database);
        QueryResult off_result = off_system.query(goal.str());
        KcmSystem fused_system(fused_options);
        fused_system.consult(database);
        QueryResult fused_result = fused_system.query(goal.str());
        ASSERT_EQ(off_result.cycles, fused_result.cycles)
            << "fusion changed simulated cycles for: " << goal.str();
        ASSERT_EQ(off_result.inferences, fused_result.inferences);
        ASSERT_GT(fused_system.machine().fusedDispatches(), 0u)
            << "profiled selection fused nothing for: " << goal.str();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFusion, ::testing::Range(1u, 7u));

class FuzzSnapshot : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FuzzSnapshot, CorruptedSnapshotsRejectedWithoutPartialMutation)
{
    // Every corruption of a snapshot container — truncation anywhere,
    // any byte changed anywhere (magic, section table, payload) — must
    // be rejected with a diagnostic, and a rejected restore must leave
    // the target machine untouched: KCMSNAP2 validates the whole
    // container (lengths + per-section checksums) before mutating
    // anything.
    TermGen gen(GetParam() * 2654435761u);

    KcmSystem host;
    host.consult("mklist(0, []).\n"
                 "mklist(N, [N|T]) :- N > 0, M is N - 1, "
                 "mklist(M, T).\n");
    CodeImage image = host.compileOnly("mklist(120, L)");

    MachineConfig config;
    config.governor.cycleBudget = 1500;
    Machine source(config);
    source.load(image);
    ASSERT_EQ(source.run(), RunStatus::Trapped)
        << "test premise: the budget must interrupt mid-build";
    Snapshot snap = takeSnapshot(source);
    ASSERT_GT(snap.bytes.size(), 64u);

    // Reference continuation of the pristine snapshot.
    Machine reference(config);
    restoreSnapshot(reference, snap);
    reference.setCycleBudget(0);
    ASSERT_EQ(reference.resume(), RunStatus::SolutionFound);
    std::string want =
        stripVarNumbers(reference.lastSolution().toString());

    // The victim holds live mid-run state; every corrupted restore
    // against it must throw without mutating it.
    Machine victim(config);
    restoreSnapshot(victim, snap);
    for (int i = 0; i < 24; ++i) {
        Snapshot bad = snap;
        if (gen.pick(3) == 0) {
            bad.bytes.resize(gen.pick(unsigned(bad.bytes.size())));
        } else {
            size_t pos = gen.pick(unsigned(bad.bytes.size()));
            bad.bytes[pos] ^= uint8_t(1 + gen.pick(255));
        }
        EXPECT_THROW(restoreSnapshot(victim, bad), FatalError)
            << "corruption " << i << " was not rejected";
    }

    // No partial mutation: the victim continues bit-identically.
    victim.setCycleBudget(0);
    ASSERT_EQ(victim.resume(), RunStatus::SolutionFound);
    EXPECT_EQ(stripVarNumbers(victim.lastSolution().toString()), want);
    EXPECT_EQ(victim.cycles(), reference.cycles());
    EXPECT_EQ(victim.instructions(), reference.instructions());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSnapshot, ::testing::Range(1u, 7u));

class FuzzDynamicDb : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FuzzDynamicDb, RandomAssertRetractChainsAgreeEverywhere)
{
    TermGen gen(GetParam() * 52368761);
    // Random update/query chains over two dynamic predicates. Heads
    // stay on the fixed names d/2 and e/1 so every step compiles to
    // the dynamic-dispatch firmware; failing steps are wrapped in
    // (G ; true) so a chain never dies at its first miss and later
    // steps still run against the mutated store.
    const char *database = ":- dynamic(d/2).\n:- dynamic(e/1).\n";
    for (int i = 0; i < 6; ++i) {
        std::ostringstream goal;
        int steps = 3 + gen.pick(5);
        for (int s = 0; s < steps; ++s) {
            if (s > 0)
                goal << ", ";
            switch (gen.pick(7)) {
              case 0:
                goal << "assertz(d(" << gen.term(2, 0) << ", "
                     << gen.term(2, 0) << "))";
                break;
              case 1:
                goal << "asserta(d(" << gen.term(2, 0) << ", "
                     << gen.term(2, 0) << "))";
                break;
              case 2:
                goal << "( retract(d(" << gen.term(2, 1) << ", _))"
                     << " ; true )";
                break;
              case 3:
                goal << "( d(" << gen.term(2, 1) << ", V0) ; true )";
                break;
              case 4:
                goal << "assertz(e(" << gen.term(2, 0) << "))";
                break;
              case 5:
                goal << "( retract(e(" << gen.term(1, 1) << ")) ; true )";
                break;
              default:
                goal << "( e(" << gen.term(1, 1) << ") ; true )";
                break;
            }
        }
        // A final open query backtracks through whatever survived.
        goal << ", ( d(V1, V2) ; e(V1) ; true )";
        compareOnce(database, goal.str());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDynamicDb, ::testing::Range(1u, 7u));
