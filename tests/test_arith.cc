/**
 * @file
 * Arithmetic tests: native integer mode, the FPU, mixed-mode
 * promotion, generic mode, division guards, and the paper's timing
 * claim that floating multiply/divide beat the integer path (§4.2).
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

QueryResult
arith(const std::string &goal, bool integer_mode = true)
{
    KcmOptions options;
    options.compiler.integerArithmetic = integer_mode;
    KcmSystem system(options);
    return system.query(goal);
}

std::string
first(const QueryResult &result)
{
    return result.solutions.empty() ? "<none>"
                                    : result.solutions[0].toString();
}

} // namespace

TEST(Arith, IntegerOperations)
{
    EXPECT_EQ(first(arith("X is 7 + 3")), "X = 10");
    EXPECT_EQ(first(arith("X is 7 - 13")), "X = -6");
    EXPECT_EQ(first(arith("X is 6 * 7")), "X = 42");
    EXPECT_EQ(first(arith("X is 22 // 7")), "X = 3");
    EXPECT_EQ(first(arith("X is 22 mod 7")), "X = 1");
    EXPECT_EQ(first(arith("X is -(5)")), "X = -5");
}

TEST(Arith, NestedExpressions)
{
    EXPECT_EQ(first(arith("X is (2 + 3) * (4 - 1)")), "X = 15");
    EXPECT_EQ(first(arith("X is 2 * 3 + 4 * 5")), "X = 26");
    EXPECT_EQ(first(arith("X is 100 // (3 + 7) // 2")), "X = 5");
}

TEST(Arith, FloatOperations)
{
    EXPECT_EQ(first(arith("X is 1.5 + 2.25")), "X = 3.75");
    EXPECT_EQ(first(arith("X is 2.5 * 4.0")), "X = 10.0");
    EXPECT_EQ(first(arith("X is 7.0 / 2.0")), "X = 3.5");
}

TEST(Arith, MixedModePromotes)
{
    EXPECT_EQ(first(arith("X is 1 + 0.5")), "X = 1.5");
    EXPECT_EQ(first(arith("X is 3.0 * 2")), "X = 6.0");
}

TEST(Arith, DivisionByZeroFails)
{
    EXPECT_FALSE(arith("_ is 1 // 0").success);
    EXPECT_FALSE(arith("_ is 1 mod 0").success);
    EXPECT_FALSE(arith("_ is 1.0 / 0.0").success);
}

TEST(Arith, UnboundOperandFails)
{
    EXPECT_FALSE(arith("X is Y + 1").success);
    EXPECT_FALSE(arith("1 < Y").success);
}

TEST(Arith, NonNumericOperandFails)
{
    EXPECT_FALSE(arith("X is foo + 1").success);
    EXPECT_FALSE(arith("X = f(1), _ is X * 2").success);
}

TEST(Arith, ComparisonsMixedMode)
{
    EXPECT_TRUE(arith("1.5 < 2").success);
    EXPECT_TRUE(arith("2 =:= 2.0").success);
    EXPECT_TRUE(arith("1 + 1 =:= 4 // 2").success);
}

TEST(Arith, GenericModeMatchesNativeResults)
{
    const char *goals[] = {
        "X is 3 * 4 + 5",
        "X is 100 mod 7",
        "X is 2.5 * 4.0",
        "X is -(3) + 10",
    };
    for (const char *goal : goals) {
        EXPECT_EQ(first(arith(goal, true)), first(arith(goal, false)))
            << goal;
    }
}

TEST(Arith, GenericModeExtraFunctions)
{
    // min/max/abs are available through the generic evaluator.
    EXPECT_EQ(first(arith("X is min(3, 7)", false)), "X = 3");
    EXPECT_EQ(first(arith("X is max(3, 7)", false)), "X = 7");
    EXPECT_EQ(first(arith("X is abs(-9)", false)), "X = 9");
}

TEST(Arith, FloatMultiplyFasterThanInteger)
{
    // §4.2: "floating arithmetic is significantly faster than integer
    // arithmetic on multiplications and divisions" — the reason the
    // authors expected query to speed up under generic arithmetic.
    const char *program =
        "muls(0, _) :- !.\n"
        "muls(N, X) :- _ is X * X, M is N - 1, muls(M, X).\n";
    auto time_mul = [&](const char *value) {
        KcmSystem system;
        system.consult(program);
        return system.query("muls(100, " + std::string(value) + ")")
            .cycles;
    };
    EXPECT_LT(time_mul("2.5"), time_mul("3"));
}

TEST(Arith, FloatDivideFasterThanInteger)
{
    const char *program =
        "divs(0, _) :- !.\n"
        "divs(N, X) :- _ is X / X, M is N - 1, divs(M, X).\n";
    auto time_div = [&](const char *value) {
        KcmSystem system;
        system.consult(program);
        return system.query("divs(100, " + std::string(value) + ")")
            .cycles;
    };
    EXPECT_LT(time_div("2.5"), time_div("3"));
}

TEST(Arith, AdditionCostsOneCycleOverMove)
{
    // Integer add is single-cycle (§3.1.1): a loop of adds must cost
    // far less than a loop of multiplies.
    const char *program =
        "adds(0) :- !.\n"
        "adds(N) :- _ is N + N, M is N - 1, adds(M).\n"
        "muls(0) :- !.\n"
        "muls(N) :- _ is N * N, M is N - 1, muls(M).\n";
    KcmSystem add_system;
    add_system.consult(program);
    uint64_t add_cycles = add_system.query("adds(100)").cycles;
    KcmSystem mul_system;
    mul_system.consult(program);
    uint64_t mul_cycles = mul_system.query("muls(100)").cycles;
    EXPECT_LT(add_cycles + 300, mul_cycles)
        << "multiply must cost ~5 extra cycles x 100 iterations";
}

TEST(Arith, Overflow32BitWraps)
{
    // The value part is 32 bits; document the wrap behaviour.
    auto result = arith("X is 2147483647 + 1");
    ASSERT_TRUE(result.success);
    EXPECT_EQ(first(result), "X = -2147483648");
}

TEST(Arith, IsUnifiesWithBoundTarget)
{
    EXPECT_TRUE(arith("7 is 3 + 4").success);
    EXPECT_FALSE(arith("8 is 3 + 4").success);
    EXPECT_TRUE(arith("X = 7, X is 3 + 4").success);
}
