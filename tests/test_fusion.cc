/**
 * @file
 * Superinstruction fusion (isa/fusion.hh, core/predecode.cc,
 * core/exec_threaded.cc).
 *
 * Fusion is a host-side dispatch-routing change and must be invisible
 * to the simulation: every fused handler, run against its unfused
 * sequence and against the decode-per-step oracle, must produce
 * bit-identical simulated metrics; a trap taken in the middle of a
 * fused sequence must deliver the same TrapInfo (pc, cycle,
 * instruction count); and a snapshot taken mid-procedure must restore
 * and resume exactly across fusion on/off and across cores.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "bench_support/harness.hh"
#include "bench_support/plm_suite.hh"
#include "core/machine.hh"
#include "core/predecode.hh"
#include "core/snapshot.hh"
#include "isa/fusion.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

/** Compile program+goal with the default compiler options. */
CodeImage
compileQuery(const std::string &program, const std::string &goal)
{
    KcmSystem host;
    if (!program.empty())
        host.consult(program);
    return host.compileOnly(goal);
}

/** Every simulated quantity that fusion must not perturb. */
struct Metrics
{
    uint64_t cycles, instructions, inferences;
    uint64_t dcacheHits, dcacheMisses, ccacheHits, ccacheMisses;
    uint64_t memoryWords, choicePoints, trailPushes, derefSteps;

    bool
    operator==(const Metrics &o) const
    {
        return cycles == o.cycles && instructions == o.instructions &&
               inferences == o.inferences && dcacheHits == o.dcacheHits &&
               dcacheMisses == o.dcacheMisses &&
               ccacheHits == o.ccacheHits &&
               ccacheMisses == o.ccacheMisses &&
               memoryWords == o.memoryWords &&
               choicePoints == o.choicePoints &&
               trailPushes == o.trailPushes && derefSteps == o.derefSteps;
    }
};

Metrics
metricsOf(Machine &m)
{
    return Metrics{
        m.cycles(),
        m.instructions(),
        m.inferences(),
        m.mem().dataCache().readHits.value() +
            m.mem().dataCache().writeHits.value(),
        m.mem().dataCache().readMisses.value() +
            m.mem().dataCache().writeMisses.value(),
        m.mem().codeCache().readHits.value(),
        m.mem().codeCache().readMisses.value(),
        m.mem().memory().readWords.value() +
            m.mem().memory().writtenWords.value(),
        m.choicePointsCreated.value(),
        m.trailPushes.value(),
        m.derefSteps.value(),
    };
}

MachineConfig
fusionConfig(FusionConfig::Mode mode,
             std::vector<uint16_t> sequences = {})
{
    MachineConfig config;
    config.fastDispatch = true;
    config.fusion.mode = mode;
    config.fusion.sequences = std::move(sequences);
    return config;
}

/** Run @p image to its natural end under @p config. */
RunStatus
runTo(Machine &m, const CodeImage &image)
{
    m.load(image);
    return m.run();
}

/** Programs that between them execute every catalog entry (checked
 *  by CatalogFullyCovered below — extend this corpus if an entry is
 *  added that none of these reach). */
const char *nrevProgram =
    "app([], L, L).\n"
    "app([H|T], L, [H|R]) :- app(T, L, R).\n"
    "nrev([], []).\n"
    "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n"
    "l16([a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p]).\n"
    "go :- l16(L), nrev(L, _).\n";

const char *qsortProgram =
    "part([], _, [], []).\n"
    "part([X|Xs], P, [X|S], B) :- X =< P, part(Xs, P, S, B).\n"
    "part([X|Xs], P, S, [X|B]) :- X > P, part(Xs, P, S, B).\n"
    "qs([], R, R).\n"
    "qs([P|Xs], R, R0) :-\n"
    "    part(Xs, P, S, B), qs(S, R, [P|R1]), qs(B, R1, R0).\n"
    "go :- qs([27,74,17,33,94,18,46,83,65,2,32,53,28,85,99,47], R, []),\n"
    "      R = [_|_].\n";

const char *choiceProgram =
    "color(red). color(green). color(blue).\n"
    "num(1). num(2). num(3).\n"
    "pair(C, N) :- color(C), num(N).\n"
    "go :- pair(C1, N1), pair(C2, N2), C1 \\== C2, N1 > N2,\n"
    "      C2 == blue.\n";

const char *structProgram =
    "tree(leaf).\n"
    "tree(node(L, _, R)) :- tree(L), tree(R).\n"
    "build(0, leaf).\n"
    "build(N, node(L, N, L)) :- N > 0, M is N - 1, build(M, L).\n"
    "go :- build(6, T), tree(T).\n";

// Targets the catalog corners the list-recursion programs miss:
// put_variable_x+call (a temporary fresh variable in a non-last
// goal) and the switch_on_term -> Try likely-target pair (a
// mixed-type predicate whose list bucket holds two clauses, so the
// switch jumps to a Try block rather than the try_me_else chain).
const char *dispatchProgram =
    "m(a).\n"
    "m([_|_]).\n"
    "m([x|_]).\n"
    "q(1).\n"
    "r.\n"
    "go :- q(_A), r, m([y]), m([x]).\n";

// List cells whose elements are known-safe (bound through an earlier
// get_list) compile to plain unify_value_x on both the get side
// (p/2's second head argument) and the put side (q/3's first goal
// argument) — the glist_uvlx and plist_* catalog entries.
const char *listValueProgram =
    "pv([X|_], [X|_]).\n"
    "q(_, _, _).\n"
    "pl([H|T]) :- q([H|X], T, X).\n"
    "go :- pv([1,2], [1,3]), pl([a,b]).\n";

const std::vector<const char *> corpus = {nrevProgram, qsortProgram,
                                          choiceProgram, structProgram,
                                          dispatchProgram,
                                          listValueProgram};

} // namespace

// Every program of the corpus: fusion off, static, profiled and the
// oracle core all agree bit-exactly on the simulated run.
TEST(Fusion, CorpusBitIdenticalAcrossModesAndCores)
{
    for (const char *program : corpus) {
        CodeImage image = compileQuery(program, "go");

        Machine off(fusionConfig(FusionConfig::Mode::Off));
        RunStatus ref_status = runTo(off, image);
        Metrics ref = metricsOf(off);

        Machine fused(fusionConfig(FusionConfig::Mode::Static));
        EXPECT_EQ(runTo(fused, image), ref_status);
        EXPECT_EQ(metricsOf(fused), ref) << "static fusion diverged";
        EXPECT_GT(fused.fusedDispatches(), 0u)
            << "corpus program executed no fused sequence";
        EXPECT_EQ(fused.dispatches() + fused.fusedInlineSteps(),
                  fused.instructions());

        MachineConfig oracle_config;
        oracle_config.fastDispatch = false;
        Machine oracle(oracle_config);
        EXPECT_EQ(runTo(oracle, image), ref_status);
        EXPECT_EQ(metricsOf(oracle), ref) << "oracle diverged";
        EXPECT_EQ(oracle.fusedDispatches(), 0u);

        // Profiled: select from a profiling run of the same image.
        MachineConfig prof_config;
        prof_config.fastDispatch = true;
        prof_config.profile = true;
        prof_config.profileSequences = true;
        Machine prof(prof_config);
        runTo(prof, image);
        Machine profiled(fusionConfig(
            FusionConfig::Mode::Profiled,
            selectFusedSequences(prof.profiler(), 12)));
        EXPECT_EQ(runTo(profiled, image), ref_status);
        EXPECT_EQ(metricsOf(profiled), ref) << "profiled fusion diverged";
    }
}

// Each catalog entry in isolation (Profiled mode with exactly one
// selected sequence): the handler's run is bit-identical to unfused,
// over every corpus program whose image contains that head.
TEST(Fusion, EveryHandlerBitIdenticalInIsolation)
{
    for (const char *program : corpus) {
        CodeImage image = compileQuery(program, "go");

        Machine off(fusionConfig(FusionConfig::Mode::Off));
        RunStatus ref_status = runTo(off, image);
        Metrics ref = metricsOf(off);

        for (uint16_t s = 0; s < numFusedSeqs; ++s) {
            Machine m(fusionConfig(FusionConfig::Mode::Profiled, {s}));
            EXPECT_EQ(runTo(m, image), ref_status);
            EXPECT_EQ(metricsOf(m), ref)
                << "handler " << fusionCatalog()[s].name << " diverged";
        }
    }
}

// The corpus plus the PLM suite executes every catalog entry at least
// once — dynamically, not just statically — so the bit-identity tests
// above actually exercise all handlers. Each entry is measured as the
// sole selected sequence (Profiled mode), because in Static mode two
// likely-target entries with the same head opcode can shadow each
// other (the peephole takes the first in catalog order).
TEST(Fusion, CatalogFullyCovered)
{
    std::vector<uint64_t> executed(numFusedSeqs, 0);

    auto accumulate = [&](const CodeImage &image) {
        for (uint16_t s = 0; s < numFusedSeqs; ++s) {
            if (executed[s])
                continue; // already proven; skip the run
            Machine m(fusionConfig(FusionConfig::Mode::Profiled, {s}));
            m.load(image);
            std::vector<uint64_t> heads = m.fusedHeadProfile();
            if (heads[s] == 0)
                continue; // entry not present in this image
            m.run();
            executed[s] += m.fusedDispatches();
        }
    };

    for (const char *program : corpus)
        accumulate(compileQuery(program, "go"));
    for (const PlmBenchmark &bench : plmSuite()) {
        KcmSystem host;
        host.consult(bench.pureProgram());
        accumulate(host.compileOnly(bench.queryPure));
    }

    for (unsigned s = 0; s < numFusedSeqs; ++s) {
        EXPECT_GT(executed[s], 0u)
            << "catalog entry '" << fusionCatalog()[s].name
            << "' executed nowhere in the corpus or PLM suite — "
               "extend the test corpus";
    }
}

// Sweep a cycle budget across an entire run: wherever the Abort lands
// — including in the middle of a fused sequence — the fused machine
// reports the same TrapInfo (pc, cycle, instructions) and metrics as
// the unfused machine and the oracle. This is the constituent-
// boundary contract: fused handlers must hit every per-instruction
// stop point exactly like the generic loop.
TEST(Fusion, TrapMidSequenceIdenticalTrapInfo)
{
    CodeImage image = compileQuery(nrevProgram, "go");

    Machine full(fusionConfig(FusionConfig::Mode::Off));
    ASSERT_EQ(runTo(full, image), RunStatus::SolutionFound);
    uint64_t total = full.cycles();
    ASSERT_GT(total, 100u);

    // Every 7th cycle: dense enough to land inside fused sequences
    // many times, sparse enough to keep the sweep fast.
    for (uint64_t budget = 3; budget < total; budget += 7) {
        MachineConfig off_config = fusionConfig(FusionConfig::Mode::Off);
        off_config.governor.cycleBudget = budget;
        Machine off(off_config);
        RunStatus off_status = runTo(off, image);

        MachineConfig fused_config =
            fusionConfig(FusionConfig::Mode::Static);
        fused_config.governor.cycleBudget = budget;
        Machine fused(fused_config);
        ASSERT_EQ(runTo(fused, image), off_status) << "budget " << budget;

        MachineConfig oracle_config;
        oracle_config.fastDispatch = false;
        oracle_config.governor.cycleBudget = budget;
        Machine oracle(oracle_config);
        ASSERT_EQ(runTo(oracle, image), off_status) << "budget " << budget;

        ASSERT_EQ(metricsOf(fused), metricsOf(off))
            << "budget " << budget;
        ASSERT_EQ(metricsOf(oracle), metricsOf(off))
            << "budget " << budget;
        if (off_status == RunStatus::Trapped) {
            EXPECT_EQ(fused.lastTrap().kind, off.lastTrap().kind);
            EXPECT_EQ(fused.lastTrap().pc, off.lastTrap().pc)
                << "budget " << budget;
            EXPECT_EQ(fused.lastTrap().cycle, off.lastTrap().cycle);
            EXPECT_EQ(fused.lastTrap().instructions,
                      off.lastTrap().instructions);
            EXPECT_EQ(oracle.lastTrap().pc, off.lastTrap().pc);
            EXPECT_EQ(oracle.lastTrap().cycle, off.lastTrap().cycle);
        }
    }
}

// A snapshot taken mid-procedure (cycle budget stops the machine in
// the middle of fused sequences) restores and resumes bit-exactly in
// every direction: fused -> unfused, unfused -> fused, fused ->
// oracle. KCMSNAP2 serializes machine state, never predecode state,
// so images are portable across fusion modes.
TEST(Fusion, SnapshotMidProcedureRestoresAcrossFusionModes)
{
    CodeImage image = compileQuery(qsortProgram, "go");

    Machine reference(fusionConfig(FusionConfig::Mode::Off));
    ASSERT_EQ(runTo(reference, image), RunStatus::SolutionFound);
    Metrics full = metricsOf(reference);

    struct Direction
    {
        FusionConfig::Mode from;
        FusionConfig::Mode to;
        bool toFast;
    };
    const Direction directions[] = {
        {FusionConfig::Mode::Static, FusionConfig::Mode::Off, true},
        {FusionConfig::Mode::Off, FusionConfig::Mode::Static, true},
        {FusionConfig::Mode::Static, FusionConfig::Mode::Static, false},
    };

    for (const Direction &dir : directions) {
        for (uint64_t budget : {full.cycles / 3, full.cycles / 2,
                                2 * full.cycles / 3}) {
            MachineConfig src_config = fusionConfig(dir.from);
            src_config.governor.cycleBudget = budget;
            Machine source(src_config);
            ASSERT_EQ(runTo(source, image), RunStatus::Trapped);
            ASSERT_EQ(source.lastTrap().kind, TrapKind::Abort);

            Snapshot snap = takeSnapshot(source);

            MachineConfig dst_config = fusionConfig(dir.to);
            dst_config.fastDispatch = dir.toFast;
            Machine restored(dst_config);
            restoreSnapshot(restored, snap);
            EXPECT_EQ(restored.cycles(), source.cycles());

            restored.setCycleBudget(0);
            ASSERT_EQ(restored.resume(), RunStatus::SolutionFound);
            EXPECT_EQ(metricsOf(restored), full)
                << "restore diverged at budget " << budget;
        }
    }
}

// Profiled selection ranks by dispatches saved: a triple scores twice
// its dynamic count, so it outranks the pair it contains, and the
// peephole (which matches in selection order) fuses the triple.
TEST(Fusion, ProfiledSelectionPrefersTriples)
{
    CodeImage image = compileQuery(nrevProgram, "go");

    MachineConfig prof_config;
    prof_config.fastDispatch = true;
    prof_config.profile = true;
    prof_config.profileSequences = true;
    Machine prof(prof_config);
    ASSERT_EQ(runTo(prof, image), RunStatus::SolutionFound);

    std::vector<uint16_t> selected =
        selectFusedSequences(prof.profiler(), 12);
    ASSERT_FALSE(selected.empty());

    const auto &catalog = fusionCatalog();
    for (size_t i = 0; i < selected.size(); ++i) {
        const FusedSeq &seq = catalog[selected[i]];
        if (seq.length != 3 || seq.likelyTarget)
            continue;
        // The contained pair prefix, if cataloged, must rank after
        // the triple (score = count * (length - 1) and the pair's
        // dynamic count can't exceed its containing triple's here).
        for (size_t j = 0; j < i; ++j) {
            const FusedSeq &other = catalog[selected[j]];
            if (other.length == 2 && !other.likelyTarget &&
                other.ops[0] == seq.ops[0] && other.ops[1] == seq.ops[1]) {
                // A pair ranked above its triple means the pair also
                // matched where the triple didn't — allowed — but its
                // score must genuinely exceed the triple's.
                const Profiler &p = prof.profiler();
                EXPECT_GT(p.pairCount(other.ops[0], other.ops[1]),
                          2 * p.tripleCount(seq.ops[0], seq.ops[1],
                                            seq.ops[2]));
            }
        }
    }

    // The selected set actually fuses: the profiled machine executes
    // fused heads and stays bit-identical (covered above, re-checked
    // cheaply here on dispatch counts alone).
    Machine profiled(
        fusionConfig(FusionConfig::Mode::Profiled, selected));
    ASSERT_EQ(runTo(profiled, image), RunStatus::SolutionFound);
    EXPECT_GT(profiled.fusedDispatches(), 0u);
    EXPECT_LT(profiled.dispatches(), profiled.instructions());
}

// fusedHeadProfile reports the static fusion layout of the loaded
// image: empty-equivalent (all zero) with fusion off, populated in
// static mode, restricted to the selection in profiled mode.
TEST(Fusion, FusedHeadProfileReflectsMode)
{
    CodeImage image = compileQuery(nrevProgram, "go");

    Machine off(fusionConfig(FusionConfig::Mode::Off));
    off.load(image);
    for (uint64_t c : off.fusedHeadProfile())
        EXPECT_EQ(c, 0u);

    Machine fused(fusionConfig(FusionConfig::Mode::Static));
    fused.load(image);
    uint64_t static_heads = 0;
    for (uint64_t c : fused.fusedHeadProfile())
        static_heads += c;
    EXPECT_GT(static_heads, 0u);

    // Profiled with a single sequence: only that entry may appear.
    for (uint16_t s : {uint16_t(0), uint16_t(numFusedSeqs - 1)}) {
        Machine one(fusionConfig(FusionConfig::Mode::Profiled, {s}));
        one.load(image);
        std::vector<uint64_t> heads = one.fusedHeadProfile();
        for (unsigned i = 0; i < numFusedSeqs; ++i) {
            if (i != s)
                EXPECT_EQ(heads[i], 0u);
        }
    }
}
