/**
 * @file
 * Tokenizer unit tests.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "prolog/lexer.hh"

using namespace kcm;

namespace
{

std::vector<Token>
lex(const std::string &src)
{
    Lexer lexer(src);
    return lexer.tokenize();
}

} // namespace

TEST(Lexer, EmptyInputIsJustEof)
{
    auto toks = lex("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, TokenKind::Eof);
}

TEST(Lexer, SimpleAtom)
{
    auto toks = lex("foo");
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, TokenKind::Atom);
    EXPECT_EQ(toks[0].text, "foo");
}

TEST(Lexer, AtomWithDigitsAndUnderscores)
{
    auto toks = lex("foo_bar42");
    EXPECT_EQ(toks[0].text, "foo_bar42");
}

TEST(Lexer, Variable)
{
    auto toks = lex("Xyz _foo _");
    EXPECT_EQ(toks[0].kind, TokenKind::Variable);
    EXPECT_EQ(toks[0].text, "Xyz");
    EXPECT_EQ(toks[1].kind, TokenKind::Variable);
    EXPECT_EQ(toks[1].text, "_foo");
    EXPECT_EQ(toks[2].kind, TokenKind::Variable);
    EXPECT_EQ(toks[2].text, "_");
}

TEST(Lexer, Integers)
{
    auto toks = lex("0 42 123456789");
    EXPECT_EQ(toks[0].intValue, 0);
    EXPECT_EQ(toks[1].intValue, 42);
    EXPECT_EQ(toks[2].intValue, 123456789);
}

TEST(Lexer, RadixIntegers)
{
    auto toks = lex("0xff 0o17 0b101");
    EXPECT_EQ(toks[0].intValue, 255);
    EXPECT_EQ(toks[1].intValue, 15);
    EXPECT_EQ(toks[2].intValue, 5);
}

TEST(Lexer, CharCodeLiteral)
{
    auto toks = lex("0'a 0' ");
    EXPECT_EQ(toks[0].intValue, 'a');
    EXPECT_EQ(toks[1].intValue, ' ');
}

TEST(Lexer, Floats)
{
    auto toks = lex("3.14 2.0e3 1e6");
    EXPECT_EQ(toks[0].kind, TokenKind::Float);
    EXPECT_DOUBLE_EQ(toks[0].floatValue, 3.14);
    EXPECT_DOUBLE_EQ(toks[1].floatValue, 2000.0);
    EXPECT_EQ(toks[2].kind, TokenKind::Float);
    EXPECT_DOUBLE_EQ(toks[2].floatValue, 1e6);
}

TEST(Lexer, IntFollowedByEndIsNotFloat)
{
    auto toks = lex("3. ");
    EXPECT_EQ(toks[0].kind, TokenKind::Int);
    EXPECT_EQ(toks[0].intValue, 3);
    EXPECT_EQ(toks[1].kind, TokenKind::End);
}

TEST(Lexer, QuotedAtom)
{
    auto toks = lex("'hello world' 'it''s'");
    EXPECT_EQ(toks[0].kind, TokenKind::Atom);
    EXPECT_EQ(toks[0].text, "hello world");
    EXPECT_EQ(toks[1].text, "it's");
}

TEST(Lexer, QuotedAtomEscapes)
{
    auto toks = lex("'a\\nb' '\\\\'");
    EXPECT_EQ(toks[0].text, "a\nb");
    EXPECT_EQ(toks[1].text, "\\");
}

TEST(Lexer, StringToken)
{
    auto toks = lex("\"abc\"");
    EXPECT_EQ(toks[0].kind, TokenKind::String);
    EXPECT_EQ(toks[0].text, "abc");
}

TEST(Lexer, SymbolicAtoms)
{
    auto toks = lex(":- ?- --> \\+ =..");
    EXPECT_EQ(toks[0].text, ":-");
    EXPECT_EQ(toks[1].text, "?-");
    EXPECT_EQ(toks[2].text, "-->");
    EXPECT_EQ(toks[3].text, "\\+");
    EXPECT_EQ(toks[4].text, "=..");
}

TEST(Lexer, Punctuation)
{
    auto toks = lex("( ) [ ] { } , |");
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(toks[i].kind, TokenKind::Punct) << i;
}

TEST(Lexer, SoloAtoms)
{
    auto toks = lex("! ;");
    EXPECT_EQ(toks[0].kind, TokenKind::Atom);
    EXPECT_EQ(toks[0].text, "!");
    EXPECT_EQ(toks[1].text, ";");
}

TEST(Lexer, LineComment)
{
    auto toks = lex("a % hidden\nb");
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].kind, TokenKind::Eof);
}

TEST(Lexer, BlockComment)
{
    auto toks = lex("a /* hidden * / still */ b");
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, LayoutBeforeTracking)
{
    auto toks = lex("f(x) g (y)");
    // f ( x ) g ( y )
    EXPECT_EQ(toks[0].text, "f");
    EXPECT_EQ(toks[1].text, "(");
    EXPECT_FALSE(toks[1].layoutBefore);
    EXPECT_EQ(toks[4].text, "g");
    EXPECT_EQ(toks[5].text, "(");
    EXPECT_TRUE(toks[5].layoutBefore);
}

TEST(Lexer, ClauseEndDetection)
{
    auto toks = lex("a. b.c. d.");
    // "b.c" is the atom b followed by infix-ish '.'? In our lexer '.'
    // not followed by layout lexes as a symbolic atom char run: ".".
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].kind, TokenKind::End);
    EXPECT_EQ(toks[2].text, "b");
    EXPECT_EQ(toks[3].kind, TokenKind::Atom);
    EXPECT_EQ(toks[3].text, ".");
}

TEST(Lexer, LineNumbers)
{
    auto toks = lex("a\nb\n\nc");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, UnterminatedQuoteThrows)
{
    Lexer lexer("'oops");
    EXPECT_THROW(lexer.tokenize(), FatalError);
}

TEST(Lexer, UnterminatedBlockCommentThrows)
{
    Lexer lexer("/* oops");
    EXPECT_THROW(lexer.tokenize(), FatalError);
}

TEST(AtomQuoting, NeedsQuotes)
{
    EXPECT_FALSE(atomNeedsQuotes("foo"));
    EXPECT_FALSE(atomNeedsQuotes("fooBar1"));
    EXPECT_FALSE(atomNeedsQuotes("+"));
    EXPECT_FALSE(atomNeedsQuotes("=.."));
    EXPECT_FALSE(atomNeedsQuotes("[]"));
    EXPECT_FALSE(atomNeedsQuotes("!"));
    EXPECT_TRUE(atomNeedsQuotes("Foo"));
    EXPECT_TRUE(atomNeedsQuotes("hello world"));
    EXPECT_TRUE(atomNeedsQuotes("a+b"));
    EXPECT_TRUE(atomNeedsQuotes(""));
}
