/**
 * @file
 * Code-image save/load tests: the compile-on-host / download-to-KCM
 * round trip, including atom re-interning across "processes".
 */

#include <sstream>

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "compiler/image_io.hh"
#include "core/machine.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

CodeImage
compile(const std::string &program, const std::string &query)
{
    KcmSystem system;
    system.consult(program);
    return system.compileOnly(query);
}

std::string
runImage(const CodeImage &image)
{
    Machine machine;
    machine.load(image);
    if (machine.run() != RunStatus::SolutionFound)
        return "<failed>";
    return machine.lastSolution().toString();
}

} // namespace

TEST(ImageIo, RoundTripPreservesExecution)
{
    CodeImage original = compile(
        "likes(mary, wine). likes(john, beer).", "likes(mary, X)");
    std::string direct = runImage(original);

    std::stringstream buffer;
    saveImage(original, buffer);
    CodeImage loaded = loadImage(buffer);

    EXPECT_EQ(runImage(loaded), direct);
    EXPECT_EQ(loaded.words.size(), original.words.size());
    EXPECT_EQ(loaded.queryEntry, original.queryEntry);
    EXPECT_EQ(loaded.predicates.size(), original.predicates.size());
}

TEST(ImageIo, AtomsSurviveRemapping)
{
    // Atoms with spaces and operator characters must survive the
    // sized-string encoding.
    CodeImage original = compile(
        "says('hello world', '+-*').", "says(A, B)");
    std::stringstream buffer;
    saveImage(original, buffer);
    CodeImage loaded = loadImage(buffer);
    EXPECT_EQ(runImage(loaded), "A = hello world, B = +-*");
}

TEST(ImageIo, StructuresAndSwitchTablesSurvive)
{
    const char *program =
        "d(a+b, plus). d(a*b, times). d(a-b, minus).\n"
        "k(one, 1). k(two, 2). k(three, 3).\n";
    CodeImage original =
        compile(program, "d(a*b, W), k(two, N)");
    std::stringstream buffer;
    saveImage(original, buffer);
    CodeImage loaded = loadImage(buffer);
    EXPECT_EQ(runImage(loaded), "W = times, N = 2");
}

TEST(ImageIo, SolutionSlotsPreserved)
{
    CodeImage original = compile("p(1, 2).", "p(First, Second)");
    std::stringstream buffer;
    saveImage(original, buffer);
    CodeImage loaded = loadImage(buffer);
    ASSERT_EQ(loaded.querySolutionSlots.size(), 2u);
    EXPECT_EQ(loaded.querySolutionSlots[0].first, "First");
    EXPECT_EQ(loaded.querySolutionSlots[1].first, "Second");
}

TEST(ImageIo, FileRoundTrip)
{
    CodeImage original = compile("p(42).", "p(X)");
    const char *path = "/tmp/kcm_test_image.kcm";
    saveImageFile(original, path);
    CodeImage loaded = loadImageFile(path);
    EXPECT_EQ(runImage(loaded), "X = 42");
}

TEST(ImageIo, RejectsGarbage)
{
    std::stringstream buffer("not an image at all");
    EXPECT_THROW(loadImage(buffer), FatalError);
}

TEST(ImageIo, RejectsTruncated)
{
    CodeImage original = compile("p(1).", "p(X)");
    std::stringstream buffer;
    saveImage(original, buffer);
    std::string text = buffer.str();
    std::stringstream truncated(text.substr(0, text.size() / 2));
    EXPECT_THROW(loadImage(truncated), FatalError);
}

TEST(ImageIo, BenchProgramsRoundTrip)
{
    // A structure-heavy benchmark survives the round trip bit-exact in
    // behaviour (cycle counts included).
    const char *program =
        "nrev([], []).\n"
        "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n"
        "app([], L, L).\n"
        "app([H|T], L, [H|R]) :- app(T, L, R).\n";
    CodeImage original = compile(program, "nrev([a,b,c,d,e], R)");

    Machine machine1;
    machine1.load(original);
    machine1.run();

    std::stringstream buffer;
    saveImage(original, buffer);
    CodeImage loaded = loadImage(buffer);
    Machine machine2;
    machine2.load(loaded);
    machine2.run();

    EXPECT_EQ(machine1.lastSolution().toString(),
              machine2.lastSolution().toString());
    EXPECT_EQ(machine1.cycles(), machine2.cycles());
    EXPECT_EQ(machine1.instructions(), machine2.instructions());
}
