/**
 * @file
 * Machine-level tests with hand-assembled code: the basic data
 * manipulation instructions of §3.1.1/§3.1.2 (move2, load/store with
 * pre/post address calculation, TVM swap), runtime zone traps, the
 * trace ring, and cycle-accounting invariants.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "compiler/assembler.hh"
#include "core/machine.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

/**
 * Assemble a raw instruction sequence into an image whose query entry
 * is the first instruction. The program must end with Halt.
 */
CodeImage
assembleRaw(const std::vector<Instr> &instructions)
{
    Assembler assembler;
    CodeImage image;
    image.haltFailEntry =
        assembler.emit(Instr::makeValue(Opcode::Halt, 1));
    image.failEntry = assembler.emit(Instr::make(Opcode::FailOp));
    Addr entry = assembler.here();
    for (const Instr &instr : instructions)
        assembler.emit(instr);
    assembler.finalize(image);
    image.queryEntry = entry;
    return image;
}

} // namespace

TEST(MachineLevel, Move2MovesTwoRegistersInOneInstruction)
{
    // x2 := x0 and x3 := x1, then halt.
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, Word::makeInt(11), 0),
        Instr::makeConstant(Opcode::LoadImm, Word::makeInt(22), 1),
        Instr::makeRegs(Opcode::Move2, 0, 1, 2, 3),
        Instr::makeRegs(Opcode::NativeAdd, 2, 3, 4),
        Instr::makeRegs(Opcode::CmpEq, 4, 4), // no-op check
        Instr::makeValue(Opcode::Halt, 0),
    });
    Machine machine;
    machine.load(image);
    EXPECT_EQ(machine.run(), RunStatus::Halted);
}

TEST(MachineLevel, LoadStoreWithOffset)
{
    // Store an int at global+5 through a data pointer, load it back,
    // compare.
    DataLayout layout; // defaults
    Word base_ptr = Word::makeDataPtr(Zone::Global, layout.globalStart);
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, base_ptr, 0),
        Instr::makeConstant(Opcode::LoadImm, Word::makeInt(77), 3),
        // mem[x0 + 5] := x3; x1 := x0 + 5
        Instr::makeRegs(Opcode::Store, 0, 1, 3, 0, 5),
        // x4 := mem[x0 + 5]; x2 := x0 + 5
        Instr::makeRegs(Opcode::Load, 0, 2, 4, 0, 5),
        // fail unless x3 == x4
        Instr::makeRegs(Opcode::CmpEq, 3, 4),
        Instr::makeValue(Opcode::Halt, 0),
    });
    Machine machine;
    machine.load(image);
    EXPECT_EQ(machine.run(), RunStatus::Halted);
}

TEST(MachineLevel, SwapTvExchangesTagAndValue)
{
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, Word::makeInt(5), 0),
        Instr::makeRegs(Opcode::SwapTV, 0, 0, 1),
        Instr::makeRegs(Opcode::SwapTV, 1, 0, 2),
        // double swap restores the original word
        Instr::makeRegs(Opcode::CmpEq, 0, 2),
        Instr::makeValue(Opcode::Halt, 0),
    });
    Machine machine;
    machine.load(image);
    EXPECT_EQ(machine.run(), RunStatus::Halted);
}

TEST(MachineLevel, FloatUsedAsAddressTrapsAtRuntime)
{
    // §3.2.3: "prevent the programmer from using e.g. the result of a
    // floating point operation to address a memory cell".
    DataLayout layout;
    Word bogus = Word::make(Tag::Float, Zone::Global,
                            layout.globalStart + 4);
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, bogus, 0),
        Instr::makeRegs(Opcode::Load, 0, 1, 2, 0, 0),
        Instr::makeValue(Opcode::Halt, 0),
    });
    Machine machine;
    machine.load(image);
    ASSERT_EQ(machine.run(), RunStatus::Trapped);
    EXPECT_EQ(machine.lastTrap().kind, TrapKind::TypeViolation);
    EXPECT_TRUE(machine.trapped());
}

TEST(MachineLevel, OutOfZoneAddressTraps)
{
    DataLayout layout;
    // A data pointer into unmapped virtual space (no zone covers it).
    Word bogus = Word::makeDataPtr(Zone::Global, layout.trailEnd + 0x1000);
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, bogus, 0),
        Instr::makeRegs(Opcode::Load, 0, 1, 2, 0, 0),
        Instr::makeValue(Opcode::Halt, 0),
    });
    Machine machine;
    machine.load(image);
    ASSERT_EQ(machine.run(), RunStatus::Trapped);
    EXPECT_EQ(machine.lastTrap().kind, TrapKind::ZoneViolation);
    // The machine survives the trap: a fresh load on the same
    // instance runs normally.
    CodeImage good = assembleRaw({Instr::makeValue(Opcode::Halt, 0)});
    machine.load(good);
    EXPECT_FALSE(machine.trapped());
    EXPECT_EQ(machine.run(), RunStatus::Halted);
}

TEST(MachineLevel, ZoneCheckDisabledAllowsTheSameAccess)
{
    DataLayout layout;
    Word odd = Word::make(Tag::Float, Zone::Global,
                          layout.globalStart + 4);
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, odd, 0),
        Instr::makeRegs(Opcode::Load, 0, 1, 2, 0, 0),
        Instr::makeValue(Opcode::Halt, 0),
    });
    MachineConfig config;
    config.mem.zoneCheckEnabled = false;
    Machine machine(config);
    machine.load(image);
    EXPECT_EQ(machine.run(), RunStatus::Halted);
}

TEST(MachineLevel, BadOpcodeTraps)
{
    CodeImage image = assembleRaw({
        Instr(uint64_t(0xFE) << 56), // not a valid opcode
    });
    Machine machine;
    machine.load(image);
    ASSERT_EQ(machine.run(), RunStatus::Trapped);
    EXPECT_EQ(machine.lastTrap().kind, TrapKind::BadInstruction);
}

TEST(MachineLevel, CycleLimitStopsRunaway)
{
    // An infinite loop: jump to self.
    Assembler assembler;
    CodeImage image;
    image.haltFailEntry = assembler.emit(Instr::makeValue(Opcode::Halt, 1));
    Addr entry = assembler.here();
    assembler.emit(Instr::makeValue(Opcode::Jump, entry));
    assembler.finalize(image);
    image.queryEntry = entry;

    MachineConfig config;
    config.maxCycles = 1000;
    Machine machine(config);
    machine.load(image);
    EXPECT_EQ(machine.run(), RunStatus::CycleLimit);
    EXPECT_GE(machine.cycles(), 1000u);
}

TEST(MachineLevel, TraceRingRecordsRecentInstructions)
{
    KcmSystem system;
    system.consult("p(a).");
    system.query("p(a)");
    std::string trace = system.machine().recentTrace();
    // The run pauses at the collect-solution escape; the trace holds
    // the query's instructions.
    EXPECT_NE(trace.find("escape"), std::string::npos);
    EXPECT_NE(trace.find("call"), std::string::npos);
}

TEST(MachineLevel, StateStringNamesAllRegisters)
{
    KcmSystem system;
    system.consult("p(a).");
    system.query("p(a)");
    std::string state = system.machine().stateString();
    for (const char *reg : {"P=", "E=", "B=", "H=", "TR=", "LT="})
        EXPECT_NE(state.find(reg), std::string::npos) << reg;
}

TEST(MachineLevel, InstructionAndCycleCountsConsistent)
{
    KcmSystem system;
    system.consult("p(a).");
    auto result = system.query("p(a)");
    // Every instruction costs at least one cycle.
    EXPECT_GE(result.cycles, result.instructions);
    // And the simulated machine executed something nontrivial.
    EXPECT_GE(result.instructions, 5u);
}

TEST(MachineLevel, MemoryTimingCanBeDisabled)
{
    const char *program =
        "walk([]).\n"
        "walk([_|T]) :- walk(T).\n"
        "l([1,2,3,4,5,6,7,8,9,10]).\n";
    KcmOptions timed;
    KcmSystem timed_system(timed);
    timed_system.consult(program);
    auto with_memory = timed_system.query("l(L), walk(L)");

    KcmOptions ideal;
    ideal.machine.timeMemory = false;
    KcmSystem ideal_system(ideal);
    ideal_system.consult(program);
    auto without_memory = ideal_system.query("l(L), walk(L)");

    EXPECT_LT(without_memory.cycles, with_memory.cycles)
        << "cold-cache penalties must show up only when timed";
}

TEST(MachineLevel, ProfilerCountsMatchMachine)
{
    KcmOptions options;
    options.machine.profile = true;
    KcmSystem system(options);
    system.consult(
        "count(0).\ncount(N) :- N > 0, M is N - 1, count(M).\n");
    auto result = system.query("count(50)");
    ASSERT_TRUE(result.success);
    const Profiler &profiler = system.machine().profiler();
    EXPECT_EQ(profiler.totalInstructions(),
              system.machine().instructions());
    // count/1 was invoked 51 times.
    auto predicates = profiler.predicateProfile();
    ASSERT_FALSE(predicates.empty());
    EXPECT_EQ(predicates[0].first, "count/1");
    EXPECT_EQ(predicates[0].second, 51u);
}
