/**
 * @file
 * Standard-library predicate tests, run on the simulated machine.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

QueryResult
lib(const std::string &goal, size_t max_solutions = 1)
{
    KcmOptions options;
    options.maxSolutions = max_solutions;
    KcmSystem system(options);
    system.consultStandardLibrary();
    return system.query(goal);
}

std::string
first(const QueryResult &result)
{
    return result.solutions.empty() ? "<none>"
                                    : result.solutions[0].toString();
}

} // namespace

TEST(Stdlib, Append)
{
    EXPECT_EQ(first(lib("append([1,2], [3], X)")), "X = [1,2,3]");
}

TEST(Stdlib, Member)
{
    EXPECT_TRUE(lib("member(b, [a,b,c])").success);
    EXPECT_FALSE(lib("member(z, [a,b,c])").success);
    EXPECT_EQ(lib("member(X, [a,b,c])", 10).solutions.size(), 3u);
}

TEST(Stdlib, Memberchk)
{
    auto result = lib("memberchk(b, [a,b,b,c])", 10);
    EXPECT_EQ(result.solutions.size(), 1u);
}

TEST(Stdlib, Length)
{
    EXPECT_EQ(first(lib("length([a,b,c,d], N)")), "N = 4");
    EXPECT_EQ(first(lib("length([], N)")), "N = 0");
}

TEST(Stdlib, Reverse)
{
    EXPECT_EQ(first(lib("reverse([1,2,3], R)")), "R = [3,2,1]");
    EXPECT_EQ(first(lib("reverse([], R)")), "R = []");
}

TEST(Stdlib, Last)
{
    EXPECT_EQ(first(lib("last([1,2,3], X)")), "X = 3");
    EXPECT_FALSE(lib("last([], _)").success);
}

TEST(Stdlib, Nth1)
{
    EXPECT_EQ(first(lib("nth1(2, [a,b,c], X)")), "X = b");
    EXPECT_FALSE(lib("nth1(5, [a,b,c], _)").success);
}

TEST(Stdlib, Select)
{
    auto result = lib("select(X, [1,2,3], Rest)", 10);
    ASSERT_EQ(result.solutions.size(), 3u);
    EXPECT_EQ(result.solutions[0].toString(), "X = 1, Rest = [2,3]");
    EXPECT_EQ(result.solutions[2].toString(), "X = 3, Rest = [1,2]");
}

TEST(Stdlib, Delete)
{
    EXPECT_EQ(first(lib("delete([1,2,1,3,1], 1, R)")), "R = [2,3]");
}

TEST(Stdlib, SumList)
{
    EXPECT_EQ(first(lib("sum_list([1,2,3,4], S)")), "S = 10");
}

TEST(Stdlib, MaxMinList)
{
    EXPECT_EQ(first(lib("max_list([3,9,2,7], M)")), "M = 9");
    EXPECT_EQ(first(lib("min_list([3,9,2,7], M)")), "M = 2");
}

TEST(Stdlib, Msort)
{
    EXPECT_EQ(first(lib("msort_([3,1,2], S)")), "S = [1,2,3]");
}

TEST(Stdlib, Between)
{
    auto result = lib("between(1, 5, X)", 10);
    ASSERT_EQ(result.solutions.size(), 5u);
    EXPECT_EQ(result.solutions[0].toString(), "X = 1");
    EXPECT_EQ(result.solutions[4].toString(), "X = 5");
    EXPECT_FALSE(lib("between(3, 2, _)").success);
}

TEST(Stdlib, Once)
{
    KcmOptions options;
    options.maxSolutions = 10;
    KcmSystem system(options);
    system.consultStandardLibrary();
    system.consult("p(1). p(2). p(3).");
    auto result = system.query("once(p(X))");
    ASSERT_EQ(result.solutions.size(), 1u);
    EXPECT_EQ(result.solutions[0].toString(), "X = 1");
}

TEST(Stdlib, Ignore)
{
    KcmSystem system;
    system.consultStandardLibrary();
    system.consult("p(1).");
    EXPECT_TRUE(system.query("ignore(p(9))").success);
    EXPECT_TRUE(system.query("ignore(p(1))").success);
}

TEST(Stdlib, NotViaNegation)
{
    KcmSystem system;
    system.consultStandardLibrary();
    system.consult("p(1).");
    EXPECT_TRUE(system.query("not(p(2))").success);
    EXPECT_FALSE(system.query("not(p(1))").success);
}

TEST(Stdlib, ComposesWithUserPrograms)
{
    KcmOptions options;
    options.maxSolutions = 100;
    KcmSystem system(options);
    system.consultStandardLibrary();
    system.consult("square(X, Y) :- Y is X * X.");
    auto result = system.query("between(1, 5, X), square(X, Y), Y > 10");
    ASSERT_EQ(result.solutions.size(), 2u);
    EXPECT_EQ(result.solutions[0].toString(), "X = 4, Y = 16");
    EXPECT_EQ(result.solutions[1].toString(), "X = 5, Y = 25");
}

TEST(Stdlib, ExcludedFromProgramSize)
{
    KcmSystem system;
    system.consultStandardLibrary();
    system.consult("p(a).");
    CodeImage image = system.compileOnly("p(a)");
    size_t instr = 0;
    size_t words = 0;
    image.programSize(instr, words);
    EXPECT_LT(instr, 10u) << "library code must not count";
}
