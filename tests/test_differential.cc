/**
 * @file
 * Differential tests: the KCM simulator and the baseline reference
 * interpreter must agree on solutions for a range of programs,
 * including the whole PLM suite. A second axis compares the two
 * execution cores of the simulator itself — the predecoded
 * token-threaded fast path against the decode-per-step oracle — which
 * must agree bit-for-bit on every simulated metric, not just on
 * solutions.
 */

#include <cctype>

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "baseline/interp.hh"
#include "bench_support/harness.hh"
#include "bench_support/plm_suite.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

/** Normalize variable numbering (_123 -> _V) for comparisons. */
std::string
stripVarNumbers(const std::string &s)
{
    std::string out;
    for (size_t i = 0; i < s.size();) {
        bool at_var = s[i] == '_' && i + 1 < s.size() &&
                      std::isdigit(static_cast<unsigned char>(s[i + 1])) &&
                      (i == 0 || !std::isalnum(
                                     static_cast<unsigned char>(s[i - 1])));
        if (at_var) {
            out += "_V";
            ++i;
            while (i < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[i]))) {
                ++i;
            }
        } else {
            out += s[i++];
        }
    }
    return out;
}

/** Run on both engines; compare success and solution strings. */
void
compareEngines(const std::string &program, const std::string &goal,
               size_t max_solutions = 5)
{
    KcmOptions options;
    options.maxSolutions = max_solutions;
    KcmSystem machine_system(options);
    if (!program.empty())
        machine_system.consult(program);
    QueryResult machine_result = machine_system.query(goal);

    baseline::Interpreter interp;
    if (!program.empty())
        interp.consult(program);
    baseline::InterpResult interp_result =
        interp.query(goal, max_solutions);

    ASSERT_EQ(machine_result.success, interp_result.success)
        << "engines disagree on success of: " << goal;
    ASSERT_EQ(machine_result.solutions.size(),
              interp_result.solutions.size())
        << "solution counts differ for: " << goal;
    for (size_t i = 0; i < machine_result.solutions.size(); ++i) {
        EXPECT_EQ(stripVarNumbers(machine_result.solutions[i].toString()),
                  stripVarNumbers(interp_result.solutions[i].toString()))
            << "solution " << i << " differs for: " << goal;
    }
    EXPECT_EQ(machine_result.output, interp_result.output)
        << "output differs for: " << goal;
}

} // namespace

TEST(Differential, Facts)
{
    compareEngines("p(1). p(2). p(3).", "p(X)");
}

TEST(Differential, Append)
{
    const char *program =
        "append([], L, L).\n"
        "append([H|T], L, [H|R]) :- append(T, L, R).\n";
    compareEngines(program, "append([1,2,3], [4], X)");
    compareEngines(program, "append(X, Y, [a,b,c])", 10);
    compareEngines(program, "append([1], X, [1,2,3])");
}

TEST(Differential, ArithmeticChains)
{
    compareEngines("", "X is 2 + 3 * 4 - 6 // 2, Y is X mod 7");
    compareEngines("", "X is 10 - 2 - 3");
    compareEngines("", "X = 4, X > 3, X < 5, X >= 4, X =< 4");
}

TEST(Differential, CutBehaviour)
{
    const char *program =
        "p(1). p(2). p(3).\n"
        "firstp(X) :- p(X), !.\n"
        "q(X) :- p(X), X > 1, !.\n"
        "r(X) :- p(X), !, X > 1.\n";
    compareEngines(program, "firstp(X)", 10);
    compareEngines(program, "q(X)", 10);
    compareEngines(program, "r(X)", 10);
}

TEST(Differential, IfThenElse)
{
    const char *program =
        "classify(X, neg) :- (X < 0 -> true ; fail).\n"
        "sign(X, S) :- (X > 0 -> S = pos ; X < 0 -> S = neg ; S = zero).\n";
    compareEngines(program, "sign(5, S)");
    compareEngines(program, "sign(-5, S)");
    compareEngines(program, "sign(0, S)");
    compareEngines(program, "classify(-1, C)");
    compareEngines(program, "classify(1, C)");
}

TEST(Differential, NegationAsFailure)
{
    const char *program = "p(1). p(2).";
    compareEngines(program, "\\+ p(3)");
    compareEngines(program, "\\+ p(1)");
    compareEngines(program, "\\+ \\+ p(1)");
}

TEST(Differential, Disjunction)
{
    compareEngines("", "(X = 1 ; X = 2 ; X = 3)", 10);
    compareEngines("p(a). p(b).", "(p(X) ; X = c)", 10);
}

TEST(Differential, StructureBuilding)
{
    compareEngines("mk(X, f(g(X), [X|_])).", "mk(7, T)");
    compareEngines("", "T = tree(L, 5, R), L = leaf, R = tree(leaf,7,leaf)");
}

TEST(Differential, TypeTests)
{
    compareEngines("", "atom(foo), integer(3), \\+ atom(3), \\+ var(foo)");
    compareEngines("", "X = f(1), compound(X), nonvar(X)");
}

TEST(Differential, StructuralCompare)
{
    compareEngines("", "f(1,2) == f(1,2)");
    compareEngines("", "f(1,2) \\== f(1,3)");
    compareEngines("", "foo @< zoo, 1 @< a, f(1) @> a");
}

TEST(Differential, FunctorArg)
{
    compareEngines("", "functor(f(a,b), N, A)");
    compareEngines("", "arg(1, point(3,4), X), arg(2, point(3,4), Y)");
}

TEST(Differential, DeepRecursionSmall)
{
    const char *program =
        "len([], 0).\n"
        "len([_|T], N) :- len(T, M), N is M + 1.\n";
    compareEngines(program, "len([a,b,c,d,e,f,g], N)");
}

TEST(Differential, BacktrackingIntoStructures)
{
    const char *program =
        "edge(a, b). edge(b, c). edge(a, c). edge(c, d).\n"
        "path2(X, Z) :- edge(X, Y), edge(Y, Z).\n";
    compareEngines(program, "path2(a, Z)", 10);
}

// Every PLM benchmark must produce identical output and first
// solution on both engines (pure forms, which are deterministic).
class PlmDifferential : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PlmDifferential, EnginesAgree)
{
    const PlmBenchmark &bench = plmBenchmark(GetParam());

    KcmOptions options;
    KcmSystem machine_system(options);
    machine_system.consult(bench.pureProgram());
    QueryResult machine_result = machine_system.query(bench.queryPure);

    baseline::Interpreter interp;
    interp.consult(bench.pureProgram());
    baseline::InterpResult interp_result = interp.query(bench.queryPure);

    ASSERT_TRUE(machine_result.success);
    ASSERT_TRUE(interp_result.success);
    ASSERT_EQ(machine_result.solutions.size(), 1u);
    EXPECT_EQ(stripVarNumbers(machine_result.solutions[0].toString()),
              stripVarNumbers(interp_result.solutions[0].toString()));
}

INSTANTIATE_TEST_SUITE_P(
    Suite, PlmDifferential,
    ::testing::Values("con1", "con6", "divide10", "hanoi", "log10",
                      "mutest", "nrev1", "ops8", "palin25", "pri2", "qs4",
                      "queens", "query", "times10"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// The fast execution core (predecoded, token-threaded) and the oracle
// (decode per step) must be indistinguishable in everything simulated:
// solutions, cycle count, instruction count and cache statistics.
// Only host time may differ.
class PlmFastOracle : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PlmFastOracle, CoresBitIdentical)
{
    const PlmBenchmark &bench = plmBenchmark(GetParam());

    KcmOptions fast_options;
    fast_options.machine.fastDispatch = true;
    KcmOptions oracle_options;
    oracle_options.machine.fastDispatch = false;

    BenchRun fast = runPlmBenchmark(bench, /*pure=*/true, fast_options);
    BenchRun oracle = runPlmBenchmark(bench, /*pure=*/true, oracle_options);

    EXPECT_EQ(fast.success, oracle.success);
    EXPECT_EQ(fast.cycles, oracle.cycles);
    EXPECT_EQ(fast.instructions, oracle.instructions);
    EXPECT_EQ(fast.inferences, oracle.inferences);
    EXPECT_EQ(fast.choicePointsCreated, oracle.choicePointsCreated);
    EXPECT_EQ(fast.choicePointsAvoided, oracle.choicePointsAvoided);
    EXPECT_EQ(fast.shallowFails, oracle.shallowFails);
    EXPECT_EQ(fast.deepFails, oracle.deepFails);
    EXPECT_EQ(fast.trailPushes, oracle.trailPushes);
    EXPECT_EQ(fast.dataReads, oracle.dataReads);
    EXPECT_EQ(fast.dataWrites, oracle.dataWrites);
    EXPECT_EQ(fast.dcacheHitRatio, oracle.dcacheHitRatio);
    EXPECT_EQ(fast.icacheHitRatio, oracle.icacheHitRatio);
    EXPECT_EQ(fast.memoryWords, oracle.memoryWords);
}

TEST_P(PlmFastOracle, SolutionsIdentical)
{
    const PlmBenchmark &bench = plmBenchmark(GetParam());

    KcmOptions fast_options;
    fast_options.machine.fastDispatch = true;
    KcmSystem fast_system(fast_options);
    fast_system.consult(bench.pureProgram());
    QueryResult fast_result = fast_system.query(bench.queryPure);

    KcmOptions oracle_options;
    oracle_options.machine.fastDispatch = false;
    KcmSystem oracle_system(oracle_options);
    oracle_system.consult(bench.pureProgram());
    QueryResult oracle_result = oracle_system.query(bench.queryPure);

    ASSERT_EQ(fast_result.success, oracle_result.success);
    ASSERT_EQ(fast_result.solutions.size(), oracle_result.solutions.size());
    // Variable numbers come from a process-global counter, so they
    // shift between runs even on the same core — normalize them.
    for (size_t i = 0; i < fast_result.solutions.size(); ++i) {
        EXPECT_EQ(stripVarNumbers(fast_result.solutions[i].toString()),
                  stripVarNumbers(oracle_result.solutions[i].toString()));
    }
    EXPECT_EQ(fast_result.output, oracle_result.output);
    EXPECT_EQ(fast_result.cycles, oracle_result.cycles);
    EXPECT_EQ(fast_result.inferences, oracle_result.inferences);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, PlmFastOracle,
    ::testing::Values("con1", "con6", "divide10", "hanoi", "log10",
                      "mutest", "nrev1", "ops8", "palin25", "pri2", "qs4",
                      "queens", "query", "times10"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });
