/**
 * @file
 * Assembler and disassembler unit tests: labels, fixups, inference
 * marks, instruction lengths.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "compiler/assembler.hh"
#include "isa/disasm.hh"

using namespace kcm;

TEST(Assembler, SequentialAddresses)
{
    Assembler assembler(0x100);
    EXPECT_EQ(assembler.here(), 0x100u);
    Addr a0 = assembler.emit(Instr::make(Opcode::Noop));
    Addr a1 = assembler.emit(Instr::make(Opcode::Proceed));
    EXPECT_EQ(a0, 0x100u);
    EXPECT_EQ(a1, 0x101u);
    EXPECT_EQ(assembler.here(), 0x102u);
}

TEST(Assembler, InstructionVsWordCounts)
{
    Assembler assembler;
    assembler.emit(Instr::make(Opcode::Noop));
    assembler.emitWord(Word::makeInt(42));
    assembler.emitWord(Word::makeCodePtr(0x200));
    EXPECT_EQ(assembler.instructionCount(), 1u);
    EXPECT_EQ(assembler.wordCount(), 3u);
}

TEST(Assembler, ForwardLabelResolution)
{
    Assembler assembler(0x100);
    Label target = assembler.newLabel();
    assembler.emitWithLabel(Instr::makeValue(Opcode::Jump, 0), target);
    assembler.emit(Instr::make(Opcode::Noop));
    assembler.bind(target);
    Addr bound = assembler.here();
    assembler.emit(Instr::make(Opcode::Halt));

    CodeImage image;
    assembler.finalize(image);
    Instr jump(image.words[0]);
    EXPECT_EQ(jump.opcode(), Opcode::Jump);
    EXPECT_EQ(jump.value(), bound);
}

TEST(Assembler, BackwardLabelResolution)
{
    Assembler assembler(0x100);
    Label loop = assembler.newLabel();
    assembler.bind(loop);
    assembler.emit(Instr::make(Opcode::Noop));
    assembler.emitWithLabel(Instr::makeValue(Opcode::Jump, 0), loop);
    CodeImage image;
    assembler.finalize(image);
    EXPECT_EQ(Instr(image.words[1]).value(), 0x100u);
}

TEST(Assembler, LabelWordResolution)
{
    Assembler assembler(0x100);
    Label target = assembler.newLabel();
    assembler.emitLabelWord(target);
    assembler.bind(target);
    assembler.emit(Instr::make(Opcode::Halt));
    CodeImage image;
    assembler.finalize(image);
    Word w(image.words[0]);
    EXPECT_TRUE(w.isCodePtr());
    EXPECT_EQ(w.addr(), 0x101u);
}

TEST(Assembler, UnboundLabelPanics)
{
    Assembler assembler;
    Label dangling = assembler.newLabel();
    assembler.emitWithLabel(Instr::makeValue(Opcode::Jump, 0), dangling);
    CodeImage image;
    EXPECT_THROW(assembler.finalize(image), PanicError);
}

TEST(Assembler, DoubleBindPanics)
{
    Assembler assembler;
    Label label = assembler.newLabel();
    assembler.bind(label);
    EXPECT_THROW(assembler.bind(label), PanicError);
}

TEST(Assembler, PredicateFixupsRecorded)
{
    Assembler assembler;
    Functor callee{internAtom("target"), 2};
    assembler.emitCall(Instr::makeValue(Opcode::Call, 0, 2), callee);
    ASSERT_EQ(assembler.predFixups().size(), 1u);
    EXPECT_EQ(assembler.predFixups()[0].callee, callee);
    EXPECT_FALSE(assembler.predFixups()[0].isTableWord);
}

TEST(Assembler, MarkLastSetsInferenceBit)
{
    Assembler assembler;
    assembler.emit(Instr::make(Opcode::Proceed));
    assembler.markLast();
    CodeImage image;
    assembler.finalize(image);
    EXPECT_TRUE(Instr(image.words[0]).inferenceMark());
    EXPECT_EQ(Instr(image.words[0]).opcode(), Opcode::Proceed);
}

TEST(Disasm, SimpleInstructionLengths)
{
    std::vector<uint64_t> code = {
        Instr::make(Opcode::Proceed).raw(),
        Instr::makeValue(Opcode::Call, 0x123, 2).raw(),
    };
    EXPECT_EQ(instrLength(code, 0), 1u);
    EXPECT_EQ(instrLength(code, 1), 1u);
}

TEST(Disasm, SwitchOnTermLength)
{
    std::vector<uint64_t> code = {
        Instr::make(Opcode::SwitchOnTerm).raw(),
        Word::makeCodePtr(1).raw(),
        Word::makeCodePtr(2).raw(),
        Word::makeCodePtr(3).raw(),
        Word::makeCodePtr(4).raw(),
    };
    EXPECT_EQ(instrLength(code, 0), 5u);
}

TEST(Disasm, SwitchOnConstantLength)
{
    std::vector<uint64_t> code = {
        Instr::makeValue(Opcode::SwitchOnConstant, 2).raw(),
        Word::makeAtom(internAtom("a")).raw(),
        Word::makeCodePtr(0x10).raw(),
        Word::makeAtom(internAtom("b")).raw(),
        Word::makeCodePtr(0x20).raw(),
        Word::makeCodePtr(0x30).raw(), // miss target
    };
    // 1 + 2 pairs + miss word.
    EXPECT_EQ(instrLength(code, 0), 6u);
}

TEST(Disasm, EveryOpcodeHasRenderableForm)
{
    for (unsigned op = 0; op < unsigned(Opcode::NumOpcodes); ++op) {
        std::vector<uint64_t> code = {
            Instr::makeRegs(Opcode(op), 1, 2, 3, 4).raw(),
            // padding in case the op claims table words
            0, 0, 0, 0,
        };
        std::string text = disasmOne(code, 0);
        EXPECT_FALSE(text.empty());
        EXPECT_NE(text.find(opcodeName(Opcode(op))), std::string::npos)
            << text;
    }
}

TEST(Disasm, CallRendersTargetAndArity)
{
    std::vector<uint64_t> code = {
        Instr::makeValue(Opcode::Call, 0xABC, 3).raw()};
    std::string text = disasmOne(code, 0);
    EXPECT_NE(text.find("call"), std::string::npos);
    EXPECT_NE(text.find("0xabc"), std::string::npos);
    EXPECT_NE(text.find("/3"), std::string::npos);
}

TEST(Disasm, ConstantRendersValue)
{
    std::vector<uint64_t> code = {
        Instr::makeConstant(Opcode::PutConstant, Word::makeInt(-7), 0, 2)
            .raw()};
    std::string text = disasmOne(code, 0);
    EXPECT_NE(text.find("int:-7"), std::string::npos);
}

TEST(Disasm, RangeWalksMultiWordInstructions)
{
    std::vector<uint64_t> code = {
        Instr::make(Opcode::SwitchOnTerm).raw(),
        Word::makeCodePtr(1).raw(),
        Word::makeCodePtr(2).raw(),
        Word::makeCodePtr(3).raw(),
        Word::makeCodePtr(4).raw(),
        Instr::make(Opcode::Proceed).raw(),
    };
    std::string text = disasmRange(code, 0, code.size());
    // Exactly two instruction lines.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}
