/**
 * @file
 * Shallow backtracking (§3.1.5) behaviour tests: delayed choice point
 * creation, shadow-register restoration, interaction with cut and
 * indexing, and equivalence with the standard WAM.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

struct RunStats
{
    QueryResult result;
    uint64_t cps = 0;
    uint64_t avoided = 0;
    uint64_t shallowFails = 0;
    uint64_t deepFails = 0;
    uint64_t trailPushes = 0;
};

RunStats
runWith(const std::string &program, const std::string &goal,
        bool shallow, size_t max_solutions = 1)
{
    KcmOptions options;
    options.machine.shallowBacktracking = shallow;
    options.maxSolutions = max_solutions;
    KcmSystem system(options);
    if (!program.empty())
        system.consult(program);
    RunStats stats;
    stats.result = system.query(goal);
    Machine &machine = system.machine();
    stats.cps = machine.choicePointsCreated.value();
    stats.avoided = machine.choicePointsAvoided.value();
    stats.shallowFails = machine.shallowFails.value();
    stats.deepFails = machine.deepFails.value();
    stats.trailPushes = machine.trailPushes.value();
    return stats;
}

} // namespace

TEST(Shallow, GuardSelectionCreatesNoChoicePoint)
{
    // abs: the failing guard of clause 1 backtracks shallowly into
    // clause 2; no choice point ever materializes.
    const char *program =
        "abs(X, X) :- X >= 0.\n"
        "abs(X, Y) :- X < 0, Y is -X.\n";
    RunStats stats = runWith(program, "abs(-5, Y)", true);
    ASSERT_TRUE(stats.result.success);
    EXPECT_EQ(stats.result.solutions[0].toString(), "Y = 5");
    EXPECT_EQ(stats.cps, 0u);
    EXPECT_GE(stats.shallowFails, 1u);
    EXPECT_EQ(stats.deepFails, 0u);
}

TEST(Shallow, StandardWamCreatesChoicePointForSameQuery)
{
    const char *program =
        "abs(X, X) :- X >= 0.\n"
        "abs(X, Y) :- X < 0, Y is -X.\n";
    RunStats stats = runWith(program, "abs(-5, Y)", false);
    ASSERT_TRUE(stats.result.success);
    EXPECT_GE(stats.cps, 1u);
    EXPECT_EQ(stats.shallowFails, 0u);
}

TEST(Shallow, HeadFailureBacktracksShallowly)
{
    const char *program = "k(a, 1). k(b, 2). k(c, 3).\n";
    // Indexing dispatches directly, so disable it via a var first arg
    // wrapper to force the chain.
    const char *wrapper = "find(X, V) :- k(X, V).";
    RunStats stats =
        runWith(std::string(program) + wrapper, "find(c, V)", true);
    ASSERT_TRUE(stats.result.success);
    EXPECT_EQ(stats.result.solutions[0].toString(), "V = 3");
}

TEST(Shallow, ChoicePointMaterializesAtNeckWhenNeeded)
{
    // p(X) binds and the body calls: alternatives remain after the
    // neck, so a real choice point must exist for solution 2.
    const char *program =
        "p(1) :- q.\n"
        "p(2) :- q.\n"
        "q.\n";
    RunStats stats = runWith(program, "p(X)", true, 10);
    ASSERT_EQ(stats.result.solutions.size(), 2u);
    EXPECT_GE(stats.cps, 1u);
}

TEST(Shallow, HeadBindingsUndoneOnShallowFail)
{
    // Clause 1 binds Y to g(X) in its head, then its guard fails; the
    // binding must be undone before clause 2 runs.
    const char *program =
        "pick(Y, Y) :- 1 > 2.\n"
        "pick(_, fallback).\n";
    RunStats stats = runWith(program, "pick(f(1), R)", true, 10);
    ASSERT_EQ(stats.result.solutions.size(), 1u);
    EXPECT_EQ(stats.result.solutions[0].toString(), "R = fallback");
    EXPECT_GE(stats.trailPushes, 0u);
}

TEST(Shallow, CutInGuardCancelsPendingAlternative)
{
    const char *program =
        "once_(a) :- !.\n"
        "once_(b).\n";
    // Call with an unbound argument so clause selection cannot be
    // done by the switch: the chain enters clause 1 with a pending
    // alternative, which the cut must cancel without ever creating a
    // choice point.
    RunStats stats = runWith(program, "once_(X)", true, 10);
    ASSERT_EQ(stats.result.solutions.size(), 1u);
    EXPECT_EQ(stats.result.solutions[0].toString(), "X = a");
    EXPECT_EQ(stats.cps, 0u);
    EXPECT_GE(stats.avoided, 1u);
}

TEST(Shallow, EquivalentSolutionsAcrossRegimes)
{
    const char *program =
        "member_(X, [X|_]).\n"
        "member_(X, [_|T]) :- member_(X, T).\n"
        "sel(X, L) :- member_(X, L), X > 2.\n";
    RunStats shallow = runWith(program, "sel(X, [1,2,3,4])", true, 10);
    RunStats standard = runWith(program, "sel(X, [1,2,3,4])", false, 10);
    ASSERT_EQ(shallow.result.solutions.size(),
              standard.result.solutions.size());
    for (size_t i = 0; i < shallow.result.solutions.size(); ++i) {
        EXPECT_EQ(shallow.result.solutions[i].toString(),
                  standard.result.solutions[i].toString());
    }
    EXPECT_LE(shallow.cps, standard.cps);
}

TEST(Shallow, DeepBacktrackingStillWorks)
{
    const char *program =
        "p(1). p(2). p(3).\n"
        "q(3).\n"
        "conj(X) :- p(X), q(X).\n";
    RunStats stats = runWith(program, "conj(X)", true);
    ASSERT_TRUE(stats.result.success);
    EXPECT_EQ(stats.result.solutions[0].toString(), "X = 3");
    // Backtracking into p after q fails is deep (past the neck).
    EXPECT_GE(stats.deepFails, 1u);
}

TEST(Shallow, CyclesSavedOnGuardHeavyWorkload)
{
    const char *program =
        "part([], _, [], []).\n"
        "part([X|L], Y, [X|L1], L2) :- X =< Y, part(L, Y, L1, L2).\n"
        "part([X|L], Y, L1, [X|L2]) :- X > Y, part(L, Y, L1, L2).\n";
    const char *goal = "part([5,1,8,2,9,3,7,4,6,0,5,1,8,2,9], 5, A, B)";
    RunStats shallow = runWith(program, goal, true);
    RunStats standard = runWith(program, goal, false);
    ASSERT_TRUE(shallow.result.success);
    ASSERT_TRUE(standard.result.success);
    EXPECT_LT(shallow.result.cycles, standard.result.cycles);
    EXPECT_LT(shallow.cps, standard.cps);
}

TEST(Shallow, TrailBoundaryRespectedAcrossNeck)
{
    // A variable bound during head unification must be unbound when a
    // post-neck deep failure rewinds past the clause.
    const char *program =
        "r(X, ok) :- X = bound, fail.\n"
        "r(X, fallback).\n";
    RunStats stats = runWith(program, "r(V, W)", true, 10);
    // Clause 1 binds V then fails in the body (deep); clause 2 must
    // see V unbound again.
    ASSERT_GE(stats.result.solutions.size(), 1u);
    std::string text = stats.result.solutions[0].toString();
    EXPECT_NE(text.find("W = fallback"), std::string::npos) << text;
    EXPECT_NE(text.find("V = _"), std::string::npos)
        << "V must be unbound again: " << text;
}

TEST(Shallow, RetryUpdatesExistingChoicePoint)
{
    // Three clauses, failure happens after each neck (deep mode): the
    // single choice point is reused with updated alternatives instead
    // of being re-created.
    const char *program =
        "s(X) :- q(X), X > 2.\n"
        "q(1) :- t. q(2) :- t. q(3) :- t.\n"
        "t.\n";
    RunStats stats = runWith(program, "s(X)", true);
    ASSERT_TRUE(stats.result.success);
    EXPECT_EQ(stats.result.solutions[0].toString(), "X = 3");
    // Only one choice point for q/1 is ever created.
    EXPECT_LE(stats.cps, 2u);
}

TEST(Shallow, WholeSuiteAgreesAcrossRegimes)
{
    const char *program =
        "nrev([], []).\n"
        "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n"
        "app([], L, L).\n"
        "app([H|T], L, [H|R]) :- app(T, L, R).\n";
    RunStats shallow = runWith(program, "nrev([1,2,3,4,5,6], R)", true);
    RunStats standard = runWith(program, "nrev([1,2,3,4,5,6], R)", false);
    EXPECT_EQ(shallow.result.solutions[0].toString(),
              standard.result.solutions[0].toString());
}
