/**
 * @file
 * Tagged word format tests (Fig. 2 / Fig. 7).
 */

#include <gtest/gtest.h>

#include "isa/instr.hh"
#include "isa/word.hh"

using namespace kcm;

TEST(Word, IntRoundTrip)
{
    Word w = Word::makeInt(-42);
    EXPECT_EQ(w.tag(), Tag::Int);
    EXPECT_EQ(w.intValue(), -42);
    EXPECT_EQ(Word::makeInt(2147483647).intValue(), 2147483647);
    EXPECT_EQ(Word::makeInt(-2147483648).intValue(),
              std::numeric_limits<int32_t>::min());
}

TEST(Word, FloatRoundTrip)
{
    Word w = Word::makeFloat(3.25f);
    EXPECT_EQ(w.tag(), Tag::Float);
    EXPECT_FLOAT_EQ(w.floatValue(), 3.25f);
    EXPECT_FLOAT_EQ(Word::makeFloat(-0.5f).floatValue(), -0.5f);
}

TEST(Word, FieldPositions)
{
    // Type in bits 51..48, zone in bits 55..52, value in 31..0.
    Word w = Word::make(Tag::List, Zone::Global, 0x00123456);
    EXPECT_EQ((w.raw() >> 48) & 0xF, uint64_t(Tag::List));
    EXPECT_EQ((w.raw() >> 52) & 0xF, uint64_t(Zone::Global));
    EXPECT_EQ(w.raw() & 0xFFFFFFFF, 0x00123456u);
}

TEST(Word, AddressMask)
{
    // Only 28 bits of the value are implemented as address.
    Word w = Word::makeDataPtr(Zone::Local, 0x0FFFFFFF);
    EXPECT_EQ(w.addr(), 0x0FFFFFFFu);
}

TEST(Word, FunctorPacking)
{
    Word f = Word::makeFunctor(internAtom("foo"), 3);
    EXPECT_EQ(f.tag(), Tag::FunctorWord);
    EXPECT_EQ(f.functorName(), internAtom("foo"));
    EXPECT_EQ(f.functorArity(), 3u);
}

TEST(Word, TvmSwap)
{
    Word w = Word::make(Tag::Int, Zone::None, 0xDEADBEEF);
    Word s = w.swapped();
    EXPECT_EQ(s.raw() >> 32, w.raw() & 0xFFFFFFFF);
    EXPECT_EQ(s.swapped(), w);
}

TEST(Word, GcBits)
{
    Word w = Word::makeInt(7).withGcBits(0xA5);
    EXPECT_EQ(w.gcBits(), 0xA5);
    EXPECT_EQ(w.intValue(), 7);
    EXPECT_EQ(w.tag(), Tag::Int);
}

TEST(Word, Predicates)
{
    EXPECT_TRUE(Word::makeNil().isNil());
    EXPECT_TRUE(Word::makeAtom(internAtom("a")).isAtomic());
    EXPECT_TRUE(Word::makeList(Zone::Global, 0x100).isDataAddress());
    EXPECT_FALSE(Word::makeInt(0).isDataAddress());
    EXPECT_TRUE(Word::makeCodePtr(0x42).isCodePtr());
}

TEST(Instr, RegFormatFields)
{
    Instr i = Instr::makeRegs(Opcode::GetValueX, 5, 17, 33, 63, -7);
    EXPECT_EQ(i.opcode(), Opcode::GetValueX);
    EXPECT_EQ(i.r1(), 5);
    EXPECT_EQ(i.r2(), 17);
    EXPECT_EQ(i.r3(), 33);
    EXPECT_EQ(i.r4(), 63);
    EXPECT_EQ(i.offset(), -7);
}

TEST(Instr, ValueFormatFields)
{
    Instr i = Instr::makeValue(Opcode::Call, 0x00ABCDEF, 3, 0);
    EXPECT_EQ(i.opcode(), Opcode::Call);
    EXPECT_EQ(i.value(), 0x00ABCDEFu);
    EXPECT_EQ(i.r1(), 3);
}

TEST(Instr, ConstantRoundTrip)
{
    Word c = Word::makeAtom(internAtom("hello"));
    Instr i = Instr::makeConstant(Opcode::GetConstant, c, 0, 2);
    EXPECT_EQ(i.constant(), c);
    EXPECT_EQ(i.r2(), 2);

    Word n = Word::makeInt(-5);
    Instr j = Instr::makeConstant(Opcode::PutConstant, n, 0, 1);
    EXPECT_EQ(j.constant().intValue(), -5);
    EXPECT_EQ(j.constant().tag(), Tag::Int);
}

TEST(Instr, WithValuePatchesOnlyValue)
{
    Instr i = Instr::makeValue(Opcode::Execute, 0, 4, 0);
    Instr patched = i.withValue(0x1234);
    EXPECT_EQ(patched.opcode(), Opcode::Execute);
    EXPECT_EQ(patched.r1(), 4);
    EXPECT_EQ(patched.value(), 0x1234u);
}

TEST(Opcodes, InfoTableComplete)
{
    for (unsigned i = 0; i < unsigned(Opcode::NumOpcodes); ++i) {
        const OpcodeInfo &info = opcodeInfo(Opcode(i));
        EXPECT_NE(info.name, nullptr);
        EXPECT_GE(info.baseCycles, 1u) << info.name;
    }
}

TEST(Opcodes, CallReturnCostsFiveCycles)
{
    // §4.2: a minimal call/return sequence costs 5 cycles.
    EXPECT_EQ(opcodeInfo(Opcode::Call).baseCycles +
                  opcodeInfo(Opcode::Proceed).baseCycles,
              5u);
}
