/**
 * @file
 * Recoverable traps, the resource governor and fault injection.
 *
 * Every TrapKind is provoked on BOTH execution cores (the predecoded
 * token-threaded fast path and the decode-per-step oracle) from the
 * same code image, and the cores must deliver the identical trap:
 * same kind, same faulting PC, same cycle count, same completed
 * instruction count. After any trap the machine stays valid — it
 * accepts a fresh load() and runs normally. The resource-governor
 * tests show the two recovery paths: firmware stack growth completes
 * a query that dies without it, and an Abort (cycle budget) resumes
 * bit-exactly after the budget is raised.
 */

#include <functional>

#include <gtest/gtest.h>

#include "bench_support/harness.hh"
#include "compiler/assembler.hh"
#include "core/machine.hh"
#include "kcm/kcm.hh"
#include "mem/fault_plan.hh"

using namespace kcm;

namespace
{

/** Assemble a raw instruction sequence; the query entry is the first
 *  instruction. The program must end with Halt. */
CodeImage
assembleRaw(const std::vector<Instr> &instructions)
{
    Assembler assembler;
    CodeImage image;
    image.haltFailEntry =
        assembler.emit(Instr::makeValue(Opcode::Halt, 1));
    image.failEntry = assembler.emit(Instr::make(Opcode::FailOp));
    Addr entry = assembler.here();
    for (const Instr &instr : instructions)
        assembler.emit(instr);
    assembler.finalize(image);
    image.queryEntry = entry;
    return image;
}

/** An infinite loop (jump to self). */
CodeImage
assembleLoop()
{
    Assembler assembler;
    CodeImage image;
    image.haltFailEntry = assembler.emit(Instr::makeValue(Opcode::Halt, 1));
    Addr entry = assembler.here();
    assembler.emit(Instr::makeValue(Opcode::Jump, entry));
    assembler.finalize(image);
    image.queryEntry = entry;
    return image;
}

/** Everything one core reports about a trap. */
struct TrapOutcome
{
    RunStatus status = RunStatus::Halted;
    TrapKind kind = TrapKind::Abort;
    uint32_t pc = 0;
    uint32_t faultAddr = 0;
    uint64_t cycle = 0;
    uint64_t instructions = 0;
};

/**
 * Run @p image on one core and collect the trap outcome; then verify
 * the machine survived: it must accept a fresh load() and complete a
 * trivial program normally.
 */
TrapOutcome
runCore(const CodeImage &image, MachineConfig config, bool fast,
        const std::function<void(Machine &)> &post_load = {})
{
    config.fastDispatch = fast;
    Machine machine(config);
    machine.load(image);
    if (post_load)
        post_load(machine);

    TrapOutcome out;
    out.status = machine.run();
    if (out.status == RunStatus::Trapped) {
        const TrapInfo &info = machine.lastTrap();
        out.kind = info.kind;
        out.pc = info.pc;
        out.faultAddr = info.faultAddr;
        out.cycle = info.cycle;
        out.instructions = info.instructions;
        EXPECT_TRUE(machine.trapped());
        EXPECT_EQ(info.cycle, machine.cycles())
            << "trap cycle must equal the rolled-back machine counter";
        EXPECT_FALSE(info.state.empty());
        EXPECT_FALSE(info.toString().empty());
    }

    // The machine stays usable after any trap.
    CodeImage good = assembleRaw({Instr::makeValue(Opcode::Halt, 0)});
    machine.load(good);
    EXPECT_FALSE(machine.trapped());
    EXPECT_EQ(machine.run(), RunStatus::Halted);
    return out;
}

/** Run both cores and assert they trap identically. */
TrapOutcome
bothCoresTrap(const CodeImage &image, const MachineConfig &config,
              TrapKind expected,
              const std::function<void(Machine &)> &post_load = {})
{
    TrapOutcome fast = runCore(image, config, /*fast=*/true, post_load);
    TrapOutcome oracle = runCore(image, config, /*fast=*/false, post_load);

    EXPECT_EQ(fast.status, RunStatus::Trapped);
    EXPECT_EQ(oracle.status, RunStatus::Trapped);
    EXPECT_EQ(fast.kind, expected) << trapKindName(fast.kind);
    EXPECT_EQ(oracle.kind, expected) << trapKindName(oracle.kind);
    EXPECT_EQ(fast.pc, oracle.pc);
    EXPECT_EQ(fast.faultAddr, oracle.faultAddr);
    EXPECT_EQ(fast.cycle, oracle.cycle);
    EXPECT_EQ(fast.instructions, oracle.instructions);
    return fast;
}

} // namespace

// --------------------------------------------------- every TrapKind

TEST(Traps, ZoneViolationIdenticalOnBothCores)
{
    DataLayout layout;
    Word bogus = Word::makeDataPtr(Zone::Global, layout.trailEnd + 0x1000);
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, bogus, 0),
        Instr::makeRegs(Opcode::Load, 0, 1, 2, 0, 0),
        Instr::makeValue(Opcode::Halt, 0),
    });
    bothCoresTrap(image, {}, TrapKind::ZoneViolation);
}

TEST(Traps, TypeViolationIdenticalOnBothCores)
{
    // §3.2.3: a float used as an address.
    DataLayout layout;
    Word bogus = Word::make(Tag::Float, Zone::Global,
                            layout.globalStart + 4);
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, bogus, 0),
        Instr::makeRegs(Opcode::Load, 0, 1, 2, 0, 0),
        Instr::makeValue(Opcode::Halt, 0),
    });
    TrapOutcome out = bothCoresTrap(image, {}, TrapKind::TypeViolation);
    EXPECT_EQ(out.faultAddr, layout.globalStart + 4);
}

TEST(Traps, WriteProtectionIdenticalOnBothCores)
{
    DataLayout layout;
    Word target = Word::makeDataPtr(Zone::Static, layout.staticStart + 8);
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, target, 0),
        Instr::makeConstant(Opcode::LoadImm, Word::makeInt(7), 3),
        Instr::makeRegs(Opcode::Store, 0, 1, 3, 0, 0),
        Instr::makeValue(Opcode::Halt, 0),
    });
    // Write-protect the static area after load (the loader itself may
    // legitimately write there).
    auto protect = [](Machine &machine) {
        ZoneChecker &checker = machine.mem().zoneChecker();
        ZoneInfo info = checker.info(Zone::Static);
        info.writeProtected = true;
        checker.configure(Zone::Static, info);
    };
    TrapOutcome out =
        bothCoresTrap(image, {}, TrapKind::WriteProtection, protect);
    EXPECT_EQ(out.faultAddr, layout.staticStart + 8);
}

TEST(Traps, InjectedPageFaultIdenticalOnBothCores)
{
    // Arm the MMU at cycle 0 via the fault plan; the next translation
    // (of either core, at the identical point) raises PageFault.
    DataLayout layout;
    Word ptr = Word::makeDataPtr(Zone::Global, layout.globalStart + 2);
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, ptr, 0),
        Instr::makeRegs(Opcode::Load, 0, 1, 2, 0, 0),
        Instr::makeValue(Opcode::Halt, 0),
    });
    MachineConfig config;
    FaultAction fault;
    fault.cycle = 0;
    fault.kind = FaultKind::InjectPageFault;
    config.faultPlan.actions.push_back(fault);
    bothCoresTrap(image, config, TrapKind::PageFault);
}

TEST(Traps, BadInstructionIdenticalOnBothCores)
{
    CodeImage image = assembleRaw({
        Instr(uint64_t(0xFE) << 56), // not a valid opcode
    });
    bothCoresTrap(image, {}, TrapKind::BadInstruction);
}

TEST(Traps, StackOverflowIdenticalOnBothCores)
{
    // A 16-word heap quota with firmware growth disabled: the first
    // store beyond the quota surfaces as StackOverflow.
    DataLayout layout;
    Word beyond = Word::makeDataPtr(Zone::Global, layout.globalStart + 64);
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, beyond, 0),
        Instr::makeConstant(Opcode::LoadImm, Word::makeInt(1), 3),
        Instr::makeRegs(Opcode::Store, 0, 1, 3, 0, 0),
        Instr::makeValue(Opcode::Halt, 0),
    });
    MachineConfig config;
    config.governor.globalQuotaWords = 16;
    config.governor.growStacks = false;
    TrapOutcome out =
        bothCoresTrap(image, config, TrapKind::StackOverflow);
    EXPECT_EQ(out.faultAddr, layout.globalStart + 64);
}

TEST(Traps, CycleBudgetAbortIdenticalOnBothCores)
{
    CodeImage image = assembleLoop();
    MachineConfig config;
    config.governor.cycleBudget = 1000;
    TrapOutcome out = bothCoresTrap(image, config, TrapKind::Abort);
    EXPECT_GE(out.cycle, 1000u);
}

// ----------------------------------------------- fault-plan scripts

TEST(Traps, TightenZoneFaultTrapsIdentically)
{
    // Clamp the global zone's end below the target address mid-run:
    // a store that would have been legal becomes a ZoneViolation.
    DataLayout layout;
    Word ptr = Word::makeDataPtr(Zone::Global, layout.globalStart + 100);
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, ptr, 0),
        Instr::makeConstant(Opcode::LoadImm, Word::makeInt(1), 3),
        Instr::makeRegs(Opcode::Store, 0, 1, 3, 0, 0),
        Instr::makeValue(Opcode::Halt, 0),
    });
    MachineConfig config;
    FaultAction fault;
    fault.cycle = 0;
    fault.kind = FaultKind::TightenZone;
    fault.zone = Zone::Global;
    fault.limit = layout.globalStart + 50;
    config.faultPlan.actions.push_back(fault);
    bothCoresTrap(image, config, TrapKind::ZoneViolation);
}

TEST(Traps, CorruptWordFaultTrapsIdentically)
{
    // Seed a valid pointer in memory, corrupt it to a float via the
    // fault plan, then dereference through it: TypeViolation.
    DataLayout layout;
    Addr cell = layout.globalStart + 10;
    Word cell_ptr = Word::makeDataPtr(Zone::Global, cell);
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, cell_ptr, 0),
        // x1 := mem[cell] (the corrupted word), then use it as an
        // address.
        Instr::makeRegs(Opcode::Load, 0, 2, 1, 0, 0),
        Instr::makeRegs(Opcode::Load, 1, 3, 4, 0, 0),
        Instr::makeValue(Opcode::Halt, 0),
    });
    MachineConfig config;
    FaultAction fault;
    fault.cycle = 0;
    fault.kind = FaultKind::CorruptWord;
    fault.addr = cell;
    fault.raw =
        Word::make(Tag::Float, Zone::Global, layout.globalStart + 4)
            .raw();
    config.faultPlan.actions.push_back(fault);
    bothCoresTrap(image, config, TrapKind::TypeViolation);
}

// -------------------------------------------------- governor recovery

TEST(Traps, StackGrowthCompletesQueryThatDiesWithoutIt)
{
    const char *program =
        "mklist(0, []).\n"
        "mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).\n";

    // Without growth: a 64-word heap quota kills the 200-cons build.
    KcmOptions no_growth;
    no_growth.machine.governor.globalQuotaWords = 64;
    no_growth.machine.governor.growStacks = false;
    KcmSystem dying(no_growth);
    dying.consult(program);
    QueryResult died = dying.query("mklist(200, L)");
    EXPECT_FALSE(died.success);
    ASSERT_TRUE(died.trapped);
    EXPECT_EQ(died.trap.kind, TrapKind::StackOverflow);
    EXPECT_NE(died.error.find("resource_error(stack_overflow)"),
              std::string::npos)
        << died.error;

    // With firmware growth (the default): the same query completes,
    // the growth counter ticks, and each growth charged its cycles.
    KcmOptions growing;
    growing.machine.governor.globalQuotaWords = 64;
    KcmSystem surviving(growing);
    surviving.consult(program);
    QueryResult lived = surviving.query("mklist(200, L)");
    EXPECT_TRUE(lived.success) << lived.error;
    EXPECT_FALSE(lived.trapped);
    EXPECT_GE(surviving.machine().stackZoneGrowths.value(), 1u);

    // An ungoverned run of the same query for reference: the governed
    // run costs extra cycles (the documented growth charge), never
    // fewer.
    KcmSystem free_system;
    free_system.consult(program);
    QueryResult free_run = free_system.query("mklist(200, L)");
    ASSERT_TRUE(free_run.success);
    EXPECT_GT(lived.cycles, free_run.cycles);
}

TEST(Traps, StackGrowthCeilingSurfacesAsTrap)
{
    // Growth capped below what the query needs: the overflow finally
    // surfaces once firmware exhausts the ceiling.
    KcmOptions options;
    options.machine.governor.globalQuotaWords = 64;
    options.machine.governor.growthStepWords = 32;
    options.machine.governor.zoneCeilingWords = 128;
    KcmSystem system(options);
    system.consult(
        "mklist(0, []).\n"
        "mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).\n");
    QueryResult result = system.query("mklist(500, L)");
    EXPECT_FALSE(result.success);
    ASSERT_TRUE(result.trapped);
    EXPECT_EQ(result.trap.kind, TrapKind::StackOverflow);
    EXPECT_GE(system.machine().stackZoneGrowths.value(), 1u);
}

TEST(Traps, AbortResumesExactlyAfterBudgetRaise)
{
    KcmSystem compile_host;
    compile_host.consult(
        "count(0).\ncount(N) :- N > 0, M is N - 1, count(M).\n");
    CodeImage image = compile_host.compileOnly("count(200)");

    // Reference: the uninterrupted run.
    Machine reference;
    reference.load(image);
    ASSERT_EQ(reference.run(), RunStatus::SolutionFound);
    uint64_t full_cycles = reference.cycles();

    // Budgeted: trap on Abort partway, raise the budget, resume.
    MachineConfig config;
    config.governor.cycleBudget = full_cycles / 2;
    Machine machine(config);
    machine.load(image);
    ASSERT_EQ(machine.run(), RunStatus::Trapped);
    EXPECT_EQ(machine.lastTrap().kind, TrapKind::Abort);
    EXPECT_LT(machine.cycles(), full_cycles);

    machine.setCycleBudget(0); // unlimited
    EXPECT_EQ(machine.resume(), RunStatus::SolutionFound);
    // Resumption is exact: the total simulated cost is identical to
    // the uninterrupted run.
    EXPECT_EQ(machine.cycles(), full_cycles);
    EXPECT_EQ(machine.instructions(), reference.instructions());
}

TEST(Traps, NonResumableTrapStaysTrapped)
{
    DataLayout layout;
    Word bogus = Word::makeDataPtr(Zone::Global, layout.trailEnd + 0x1000);
    CodeImage image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, bogus, 0),
        Instr::makeRegs(Opcode::Load, 0, 1, 2, 0, 0),
        Instr::makeValue(Opcode::Halt, 0),
    });
    Machine machine;
    machine.load(image);
    ASSERT_EQ(machine.run(), RunStatus::Trapped);
    ASSERT_EQ(machine.lastTrap().kind, TrapKind::ZoneViolation);
    // resume() refuses: the faulting instruction was partially issued
    // and cannot be replayed.
    EXPECT_EQ(machine.resume(), RunStatus::Trapped);
    EXPECT_EQ(machine.lastTrap().kind, TrapKind::ZoneViolation);
}

TEST(Traps, QueryApiReportsResourceError)
{
    KcmOptions options;
    options.machine.governor.cycleBudget = 2000;
    KcmSystem system(options);
    system.consult("loop :- loop.\n");
    QueryResult result = system.query("loop");
    EXPECT_FALSE(result.success);
    ASSERT_TRUE(result.trapped);
    EXPECT_EQ(result.trap.kind, TrapKind::Abort);
    EXPECT_NE(result.error.find("resource_error(abort)"),
              std::string::npos)
        << result.error;

    // The same system object keeps working after the resource error.
    system.consult("ok.\n");
    QueryResult next = system.query("ok");
    EXPECT_TRUE(next.success);
    EXPECT_FALSE(next.trapped);
    EXPECT_TRUE(next.error.empty());
}

// ------------------------------------------- bench-harness isolation

TEST(Traps, WatchdogTimesOutRunawayBenchmark)
{
    // An infinite loop under a 50 ms wall-clock watchdog: recorded as
    // a failed, timed-out run — the harness never hangs or throws.
    PreparedBenchmark prep;
    prep.name = "runaway";
    prep.image = assembleLoop();
    BenchRun run = runPrepared(prep, /*watchdog_seconds=*/0.05);
    EXPECT_FALSE(run.success);
    EXPECT_TRUE(run.timedOut);
    EXPECT_FALSE(run.trapped);
    EXPECT_NE(run.failure.find("timeout"), std::string::npos)
        << run.failure;
    EXPECT_GT(run.cycles, 0u);
}

TEST(Traps, HarnessRecordsTrappedBenchmarkAsFailed)
{
    DataLayout layout;
    Word bogus = Word::makeDataPtr(Zone::Global, layout.trailEnd + 0x1000);
    PreparedBenchmark prep;
    prep.name = "trapping";
    prep.image = assembleRaw({
        Instr::makeConstant(Opcode::LoadImm, bogus, 0),
        Instr::makeRegs(Opcode::Load, 0, 1, 2, 0, 0),
        Instr::makeValue(Opcode::Halt, 0),
    });
    BenchRun run = runPrepared(prep);
    EXPECT_FALSE(run.success);
    EXPECT_TRUE(run.trapped);
    EXPECT_FALSE(run.timedOut);
    EXPECT_NE(run.failure.find("machine_trap(zone_violation)"),
              std::string::npos)
        << run.failure;
}

TEST(Traps, WatchdogSlicingLeavesMetricsUntouched)
{
    // The same benchmark with and without the watchdog: identical
    // simulated results (slicing runs through Abort/resume, which is
    // exact).
    PreparedBenchmark prep = preparePlmBenchmark(
        plmBenchmark("queens"), /*pure=*/true);
    BenchRun plain = runPrepared(prep);
    BenchRun watched = runPrepared(prep, /*watchdog_seconds=*/120);
    ASSERT_TRUE(plain.success);
    ASSERT_TRUE(watched.success);
    EXPECT_EQ(plain.cycles, watched.cycles);
    EXPECT_EQ(plain.instructions, watched.instructions);
    EXPECT_EQ(plain.inferences, watched.inferences);
}

TEST(Traps, TrapCountersAreConsistentAcrossCores)
{
    // The trap counter itself and the cycle counters agree between
    // cores even when the run ends in a trap (trap-safe accounting).
    CodeImage image = assembleLoop();
    MachineConfig config;
    config.governor.cycleBudget = 5000;

    for (bool fast : {true, false}) {
        config.fastDispatch = fast;
        Machine machine(config);
        machine.load(image);
        ASSERT_EQ(machine.run(), RunStatus::Trapped);
        EXPECT_EQ(machine.trapsTaken.value(), 1u);
        // The rolled-back counter sits exactly at an instruction
        // boundary: no partial-instruction cycles leak in.
        EXPECT_EQ(machine.cycles(), machine.lastTrap().cycle);
        EXPECT_EQ(machine.instructions(),
                  machine.lastTrap().instructions);
    }
}
