/**
 * @file
 * Memory system tests: main memory timing, MMU, zone check, caches.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "mem/mem_system.hh"

using namespace kcm;

// ---------------------------------------------------------------- memory

TEST(MainMemory, BurstTiming)
{
    MainMemory memory(1 << 16);
    uint64_t buffer[4] = {1, 2, 3, 4};
    unsigned c1 = memory.writeBurst(0x100, buffer, 1);
    unsigned c4 = memory.writeBurst(0x200, buffer, 4);
    EXPECT_EQ(c1, memory.timings().firstWord);
    EXPECT_EQ(c4, memory.timings().firstWord +
                      3 * memory.timings().pageModeWord);
}

TEST(MainMemory, DataRoundTrip)
{
    MainMemory memory(1 << 16);
    uint64_t in[2] = {0xDEADBEEFCAFEF00D, 42};
    memory.writeBurst(10, in, 2);
    uint64_t out[2] = {0, 0};
    memory.readBurst(10, out, 2);
    EXPECT_EQ(out[0], in[0]);
    EXPECT_EQ(out[1], in[1]);
}

TEST(MainMemory, OutOfRangePanics)
{
    MainMemory memory(128);
    uint64_t w = 0;
    EXPECT_THROW(memory.writeBurst(127, &w, 2), PanicError);
}

// ------------------------------------------------------------------ mmu

TEST(Mmu, DemandAllocation)
{
    MainMemory memory(1 << 20);
    Mmu mmu(memory);
    EXPECT_EQ(mmu.demandFaults.value(), 0u);
    PhysAddr pa1 = mmu.translate(AddrSpace::Data, 0x100, false);
    EXPECT_EQ(mmu.demandFaults.value(), 1u);
    // Second access to the same page: no new fault.
    PhysAddr pa2 = mmu.translate(AddrSpace::Data, 0x101, false);
    EXPECT_EQ(mmu.demandFaults.value(), 1u);
    EXPECT_EQ(pa2, pa1 + 1);
}

TEST(Mmu, SeparateSpaces)
{
    MainMemory memory(1 << 20);
    Mmu mmu(memory);
    PhysAddr code = mmu.translate(AddrSpace::Code, 0x0, false);
    PhysAddr data = mmu.translate(AddrSpace::Data, 0x0, false);
    EXPECT_NE(code, data);
}

TEST(Mmu, PageOffsetPreserved)
{
    MainMemory memory(1 << 20);
    Mmu mmu(memory);
    Addr va = (3u << pageShift) | 0x123;
    PhysAddr pa = mmu.translate(AddrSpace::Data, va, false);
    EXPECT_EQ(pa & (pageSizeWords - 1), 0x123u);
}

TEST(Mmu, DirtyAndReferencedBits)
{
    MainMemory memory(1 << 20);
    Mmu mmu(memory);
    mmu.translate(AddrSpace::Data, 0x0, false);
    EXPECT_TRUE(mmu.entry(AddrSpace::Data, 0).referenced());
    EXPECT_FALSE(mmu.entry(AddrSpace::Data, 0).dirty());
    mmu.translate(AddrSpace::Data, 0x0, true);
    EXPECT_TRUE(mmu.entry(AddrSpace::Data, 0).dirty());
}

TEST(Mmu, WriteProtectionTraps)
{
    MainMemory memory(1 << 20);
    Mmu mmu(memory);
    mmu.translate(AddrSpace::Code, 0x0, true);
    mmu.entry(AddrSpace::Code, 0).setWritable(false);
    EXPECT_THROW(mmu.translate(AddrSpace::Code, 0x0, true), MachineTrap);
    EXPECT_NO_THROW(mmu.translate(AddrSpace::Code, 0x0, false));
}

TEST(Mmu, BatchCompilationPageHandOver)
{
    // §3.2.1: compile into the data space, then attach the physical
    // page to the code space.
    MainMemory memory(1 << 20);
    Mmu mmu(memory);
    PhysAddr data_pa = mmu.translate(AddrSpace::Data, 0x0, true);
    memory.poke(data_pa, 0x1234);
    mmu.attachDataPageToCode(0, 5);
    PhysAddr code_pa =
        mmu.translate(AddrSpace::Code, 5u << pageShift, false);
    EXPECT_EQ(memory.peek(code_pa), 0x1234u);
    // The data mapping is gone: a new touch faults in a fresh page.
    uint64_t faults = mmu.demandFaults.value();
    mmu.translate(AddrSpace::Data, 0x0, false);
    EXPECT_EQ(mmu.demandFaults.value(), faults + 1);
}

TEST(Mmu, OutOfPhysicalPagesTraps)
{
    MainMemory memory(2 * pageSizeWords); // two physical pages only
    Mmu mmu(memory);
    mmu.translate(AddrSpace::Data, 0, false);
    mmu.translate(AddrSpace::Data, pageSizeWords, false);
    EXPECT_THROW(mmu.translate(AddrSpace::Data, 2 * pageSizeWords, false),
                 MachineTrap);
}

// ----------------------------------------------------------- zone check

class ZoneCheckTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        installStandardZones(checker, layout);
    }

    DataLayout layout;
    ZoneChecker checker;
};

TEST_F(ZoneCheckTest, ListIntoGlobalOk)
{
    Word w = Word::makeList(Zone::Global, layout.globalStart + 4);
    EXPECT_NO_THROW(checker.check(w, false));
}

TEST_F(ZoneCheckTest, FloatAsAddressTraps)
{
    // "prevent the programmer from using e.g. the result of a floating
    // point operation to address a memory cell" (§3.2.3)
    Word f = Word::makeFloat(1.0f);
    Word as_addr = Word::make(Tag::Float, Zone::Global,
                              layout.globalStart + 4);
    EXPECT_THROW(checker.check(as_addr, false), MachineTrap);
    (void)f;
}

TEST_F(ZoneCheckTest, IntAsAddressTraps)
{
    Word w = Word::make(Tag::Int, Zone::Local, layout.localStart);
    EXPECT_THROW(checker.check(w, false), MachineTrap);
}

TEST_F(ZoneCheckTest, ListIntoLocalTraps)
{
    // Lists are not constructed on the local stack (§3.2.3).
    Word w = Word::makeList(Zone::Local, layout.localStart + 4);
    EXPECT_THROW(checker.check(w, false), MachineTrap);
}

TEST_F(ZoneCheckTest, RefIntoControlStackTraps)
{
    // No reference may ever point into the choice point stack.
    Word w = Word::makeRef(Zone::Control, layout.controlStart + 4);
    EXPECT_THROW(checker.check(w, false), MachineTrap);
}

TEST_F(ZoneCheckTest, DataPtrIntoControlOk)
{
    Word w = Word::makeDataPtr(Zone::Control, layout.controlStart + 4);
    EXPECT_NO_THROW(checker.check(w, false));
}

TEST_F(ZoneCheckTest, OutOfRangeTraps)
{
    Word w = Word::makeRef(Zone::Global, layout.globalEnd);
    EXPECT_THROW(checker.check(w, false), MachineTrap);
    Word w2 = Word::makeRef(Zone::Global, layout.globalStart - 1);
    EXPECT_THROW(checker.check(w2, false), MachineTrap);
}

TEST_F(ZoneCheckTest, DynamicLimitChange)
{
    Addr a = layout.globalEnd + 0x1000;
    Word w = Word::makeRef(Zone::Global, a);
    EXPECT_THROW(checker.check(w, false), MachineTrap);
    checker.setLimits(Zone::Global, layout.globalStart, a + 0x1000);
    EXPECT_NO_THROW(checker.check(w, false));
}

TEST_F(ZoneCheckTest, WriteProtection)
{
    ZoneInfo zi;
    zi.start = 0x10;
    zi.end = 0x20;
    zi.allowedTags = tagMask({Tag::DataPtr});
    zi.writeProtected = true;
    checker.configure(Zone::System, zi);
    Word w = Word::makeDataPtr(Zone::System, 0x10);
    EXPECT_NO_THROW(checker.check(w, false));
    EXPECT_THROW(checker.check(w, true), MachineTrap);
}

TEST_F(ZoneCheckTest, HighAddressBitsTrap)
{
    Word w = Word::make(Tag::Ref, Zone::Global, 0xF0000000 |
                        (layout.globalStart + 4));
    EXPECT_THROW(checker.check(w, false), MachineTrap);
}

TEST_F(ZoneCheckTest, DisabledCheckerPassesEverything)
{
    checker.setEnabled(false);
    Word w = Word::make(Tag::Float, Zone::Control, 0x4);
    EXPECT_NO_THROW(checker.check(w, true));
}

// ---------------------------------------------------------------- dcache

class DataCacheTest : public ::testing::Test
{
  protected:
    DataCacheTest() : memory(1 << 20), mmu(memory) {}

    MainMemory memory;
    Mmu mmu;
};

TEST_F(DataCacheTest, WriteMissNeedsNoMemoryFetch)
{
    DataCache cache(mmu, memory, {});
    unsigned penalty = 0;
    Word addr = Word::makeRef(Zone::Global, 0x100);
    cache.write(addr, Word::makeInt(1), penalty);
    EXPECT_EQ(penalty, 0u); // line size 1: allocate without fetch
    EXPECT_EQ(cache.writeMisses.value(), 1u);
    EXPECT_EQ(memory.readWords.value(), 0u);
}

TEST_F(DataCacheTest, ReadAfterWriteHits)
{
    DataCache cache(mmu, memory, {});
    unsigned penalty = 0;
    Word addr = Word::makeRef(Zone::Global, 0x100);
    cache.write(addr, Word::makeInt(77), penalty);
    Word got = cache.read(addr, penalty);
    EXPECT_EQ(got.intValue(), 77);
    EXPECT_EQ(cache.readHits.value(), 1u);
    EXPECT_EQ(penalty, 0u);
}

TEST_F(DataCacheTest, DirtyEvictionWritesBack)
{
    DataCacheConfig config;
    config.sectionWords = 16;
    config.sections = 8;
    DataCache cache(mmu, memory, config);
    unsigned penalty = 0;
    Word a1 = Word::makeRef(Zone::Global, 0x100);
    Word a2 = Word::makeRef(Zone::Global, 0x110); // same index (16 apart)
    cache.write(a1, Word::makeInt(1), penalty);
    EXPECT_EQ(penalty, 0u);
    cache.write(a2, Word::makeInt(2), penalty);
    EXPECT_GT(penalty, 0u); // victim write-back
    EXPECT_EQ(cache.writeBacks.value(), 1u);
    // a1 went to memory; reading it misses and fetches the value.
    penalty = 0;
    EXPECT_EQ(cache.read(a1, penalty).intValue(), 1);
    EXPECT_GT(penalty, 0u);
}

TEST_F(DataCacheTest, ZoneSectionsPreventStackCollisions)
{
    DataCacheConfig config;
    config.sectionWords = 16;
    config.sections = 8;
    DataCache cache(mmu, memory, config);
    unsigned penalty = 0;
    // Same low address bits, different zones: no conflict.
    Word global = Word::makeRef(Zone::Global, 0x300);
    Word local = Word::makeDataPtr(Zone::Local, 0x300);
    cache.write(global, Word::makeInt(1), penalty);
    cache.write(local, Word::makeInt(2), penalty);
    EXPECT_EQ(cache.writeBacks.value(), 0u);
    EXPECT_EQ(cache.read(global, penalty).intValue(), 1);
    EXPECT_EQ(cache.read(local, penalty).intValue(), 2);
    EXPECT_EQ(cache.readMisses.value(), 0u);
}

TEST_F(DataCacheTest, UnifiedModeSuffersStackCollisions)
{
    DataCacheConfig config;
    config.sectionWords = 16;
    config.sections = 8;
    config.zoneIndexed = false; // plain direct-mapped, 128 words
    DataCache cache(mmu, memory, config);
    unsigned penalty = 0;
    // Two addresses 128 words apart collide in unified mode.
    Word a1 = Word::makeRef(Zone::Global, 0x100);
    Word a2 = Word::makeDataPtr(Zone::Local, 0x180);
    cache.write(a1, Word::makeInt(1), penalty);
    cache.write(a2, Word::makeInt(2), penalty);
    EXPECT_EQ(cache.writeBacks.value(), 1u);
}

TEST_F(DataCacheTest, ProbeDoesNotDisturbStats)
{
    DataCache cache(mmu, memory, {});
    unsigned penalty = 0;
    Word addr = Word::makeRef(Zone::Global, 0x42);
    cache.write(addr, Word::makeInt(9), penalty);
    uint64_t hits = cache.readHits.value();
    Word out;
    EXPECT_TRUE(cache.probe(addr, out));
    EXPECT_EQ(out.intValue(), 9);
    EXPECT_EQ(cache.readHits.value(), hits);
    Word absent = Word::makeRef(Zone::Global, 0x999);
    EXPECT_FALSE(cache.probe(absent, out));
}

TEST_F(DataCacheTest, FlushAllWritesDirtyData)
{
    DataCache cache(mmu, memory, {});
    unsigned penalty = 0;
    Word addr = Word::makeRef(Zone::Global, 0x55);
    cache.write(addr, Word::makeInt(5), penalty);
    cache.flushAll();
    PhysAddr pa = mmu.translate(AddrSpace::Data, 0x55, false);
    EXPECT_EQ(Word(memory.peek(pa)).intValue(), 5);
}

TEST_F(DataCacheTest, DisabledCacheAlwaysGoesToMemory)
{
    DataCacheConfig config;
    config.enabled = false;
    DataCache cache(mmu, memory, config);
    unsigned penalty = 0;
    Word addr = Word::makeRef(Zone::Global, 0x10);
    cache.write(addr, Word::makeInt(3), penalty);
    EXPECT_GT(penalty, 0u);
    penalty = 0;
    EXPECT_EQ(cache.read(addr, penalty).intValue(), 3);
    EXPECT_GT(penalty, 0u);
}

// ---------------------------------------------------------------- icache

TEST(CodeCache, PrefetchOnMiss)
{
    MainMemory memory(1 << 20);
    Mmu mmu(memory);
    CodeCacheConfig config;
    config.prefetchWords = 4;
    CodeCache cache(mmu, memory, config);

    // Preload memory with code at virtual 0x100..0x103.
    for (unsigned i = 0; i < 4; ++i) {
        PhysAddr pa = mmu.translate(AddrSpace::Code, 0x100 + i, true);
        memory.poke(pa, 0xC0DE + i);
    }

    unsigned penalty = 0;
    EXPECT_EQ(cache.read(0x100, penalty), 0xC0DEu);
    EXPECT_GT(penalty, 0u);
    EXPECT_EQ(cache.readMisses.value(), 1u);

    // The three following words were prefetched.
    penalty = 0;
    EXPECT_EQ(cache.read(0x101, penalty), 0xC0DFu);
    EXPECT_EQ(cache.read(0x102, penalty), 0xC0E0u);
    EXPECT_EQ(cache.read(0x103, penalty), 0xC0E1u);
    EXPECT_EQ(penalty, 0u);
    EXPECT_EQ(cache.readHits.value(), 3u);
}

TEST(CodeCache, WriteThrough)
{
    MainMemory memory(1 << 20);
    Mmu mmu(memory);
    CodeCache cache(mmu, memory, {});
    unsigned penalty = 0;
    cache.write(0x200, 0xFEED, penalty);
    EXPECT_GT(penalty, 0u); // write-through pays memory latency
    PhysAddr pa = mmu.translate(AddrSpace::Code, 0x200, false);
    EXPECT_EQ(memory.peek(pa), 0xFEEDu);
    penalty = 0;
    EXPECT_EQ(cache.read(0x200, penalty), 0xFEEDu);
    EXPECT_EQ(cache.readHits.value(), 1u);
}

// ------------------------------------------------------------ mem system

TEST(MemSystem, EndToEndDataPath)
{
    MemSystem mem;
    unsigned penalty = 0;
    Word addr = Word::makeRef(Zone::Global, mem.layout().globalStart + 8);
    mem.writeData(addr, Word::makeAtom(internAtom("x")), penalty);
    Word got = mem.readData(addr, penalty);
    EXPECT_EQ(got.atom(), internAtom("x"));
}

TEST(MemSystem, ZoneCheckOnDataPath)
{
    MemSystem mem;
    unsigned penalty = 0;
    Word bad = Word::make(Tag::Int, Zone::Global,
                          mem.layout().globalStart + 8);
    EXPECT_THROW(mem.readData(bad, penalty), MachineTrap);
}

TEST(MemSystem, PeekSeesDirtyCacheData)
{
    MemSystem mem;
    unsigned penalty = 0;
    Addr a = mem.layout().globalStart + 16;
    Word addr = Word::makeRef(Zone::Global, a);
    mem.writeData(addr, Word::makeInt(123), penalty);
    EXPECT_EQ(mem.peekData(a).intValue(), 123);
}

TEST(MemSystem, CodeRoundTrip)
{
    MemSystem mem;
    mem.pokeCode(0x40, 0xABCDEF);
    unsigned penalty = 0;
    EXPECT_EQ(mem.fetchCode(0x40, penalty), 0xABCDEFu);
}
