/**
 * @file
 * Compiler unit tests: instruction streams for representative clauses,
 * indexing structure, LCO, environment handling, unsafe variables.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "compiler/builtin_defs.hh"
#include "compiler/compiler.hh"
#include "isa/disasm.hh"

using namespace kcm;

namespace
{

CodeImage
compileProgram(const std::string &program, const std::string &query = "",
               const CompilerOptions &options = {})
{
    Compiler compiler(options);
    compiler.addProgram(program);
    if (!query.empty())
        compiler.setQuery(query);
    return compiler.compile();
}

/** Disassembly of one predicate, one mnemonic+operands per line. */
std::string
predicateCode(const CodeImage &image, const std::string &name,
              uint32_t arity)
{
    const PredicateInfo *info = image.find({internAtom(name), arity});
    if (!info)
        return "<undefined>";
    return disasmRange(image.words, info->entry - image.base,
                       info->entry - image.base + info->words);
}

/** Count occurrences of a mnemonic in a disassembly. */
int
countOf(const std::string &listing, const std::string &mnemonic)
{
    int count = 0;
    size_t pos = 0;
    while ((pos = listing.find("\t" + mnemonic, pos)) !=
           std::string::npos) {
        // Require a word boundary after the mnemonic.
        char after = listing[pos + 1 + mnemonic.size()];
        if (after == ' ' || after == '\n')
            ++count;
        pos += mnemonic.size();
    }
    return count;
}

} // namespace

TEST(Compiler, FactIsJustHeadAndProceed)
{
    CodeImage image = compileProgram("p(a, 1).");
    std::string code = predicateCode(image, "p", 2);
    EXPECT_EQ(countOf(code, "get_constant"), 2);
    EXPECT_EQ(countOf(code, "proceed"), 1);
    EXPECT_EQ(countOf(code, "allocate"), 0);
    EXPECT_EQ(countOf(code, "neck"), 0) << "single clause: no neck";
}

TEST(Compiler, MultiClausePredicateGetsNeck)
{
    CodeImage image = compileProgram("p(a). p(b).");
    std::string code = predicateCode(image, "p", 1);
    EXPECT_EQ(countOf(code, "neck"), 2) << "one neck per clause";
    EXPECT_EQ(countOf(code, "try_me_else"), 1);
    EXPECT_EQ(countOf(code, "trust_me"), 1);
}

TEST(Compiler, ThreeClauseChain)
{
    CodeImage image = compileProgram("p(a). p(b). p(c).");
    std::string code = predicateCode(image, "p", 1);
    EXPECT_EQ(countOf(code, "try_me_else"), 1);
    EXPECT_EQ(countOf(code, "retry_me_else"), 1);
    EXPECT_EQ(countOf(code, "trust_me"), 1);
}

TEST(Compiler, SwitchOnTermEmittedForIndexablePredicate)
{
    CodeImage image = compileProgram(
        "app([], L, L).\n"
        "app([H|T], L, [H|R]) :- app(T, L, R).\n");
    std::string code = predicateCode(image, "app", 3);
    EXPECT_EQ(countOf(code, "switch_on_term"), 1);
    // [] is a constant key: a constant switch exists.
    EXPECT_EQ(countOf(code, "switch_on_constant"), 1);
}

TEST(Compiler, NoIndexingWhenDisabled)
{
    CompilerOptions options;
    options.indexing = false;
    CodeImage image = compileProgram(
        "app([], L, L).\n"
        "app([H|T], L, [H|R]) :- app(T, L, R).\n",
        "", options);
    std::string code = predicateCode(image, "app", 3);
    EXPECT_EQ(countOf(code, "switch_on_term"), 0);
}

TEST(Compiler, SwitchOnStructureForStructKeys)
{
    CodeImage image = compileProgram(
        "d(a+b, x). d(a*b, y). d(a-b, z). d(V, w) :- atom(V).");
    std::string code = predicateCode(image, "d", 2);
    EXPECT_EQ(countOf(code, "switch_on_structure"), 1);
}

TEST(Compiler, LastCallOptimization)
{
    CodeImage image = compileProgram("loop(X) :- loop(X).");
    std::string code = predicateCode(image, "loop", 1);
    EXPECT_EQ(countOf(code, "execute"), 1);
    EXPECT_EQ(countOf(code, "call"), 0);
    EXPECT_EQ(countOf(code, "allocate"), 0) << "tail call needs no env";
}

TEST(Compiler, EnvironmentForMultipleCalls)
{
    CodeImage image = compileProgram("p :- q, r.\nq.\nr.\n");
    std::string code = predicateCode(image, "p", 0);
    EXPECT_EQ(countOf(code, "allocate"), 1);
    EXPECT_EQ(countOf(code, "deallocate"), 1);
    EXPECT_EQ(countOf(code, "call"), 1) << "first goal via call";
    EXPECT_EQ(countOf(code, "execute"), 1) << "last goal via execute";
}

TEST(Compiler, PermanentVariableUsesYSlots)
{
    CodeImage image = compileProgram("p(X) :- q(X), r(X).\nq(_).\nr(_).\n");
    std::string code = predicateCode(image, "p", 1);
    // X is captured to a Y slot after allocate and read back for r.
    EXPECT_GE(countOf(code, "get_variable_y"), 1);
    EXPECT_GE(countOf(code, "put_value_y"), 1);
}

TEST(Compiler, UnsafeVariableGetsPutUnsafe)
{
    // Y first bound by put_variable_y in a body goal and passed to the
    // last call: the classic unsafe variable.
    CodeImage image =
        compileProgram("p :- q(X), r(X).\nq(_).\nr(_).\n");
    std::string code = predicateCode(image, "p", 0);
    EXPECT_EQ(countOf(code, "put_variable_y"), 1);
    EXPECT_EQ(countOf(code, "put_unsafe_value"), 1);
}

TEST(Compiler, HeadCapturedVariableIsSafe)
{
    CodeImage image = compileProgram("p(X) :- q(X), r(X).\nq(_).\nr(_).\n");
    std::string code = predicateCode(image, "p", 1);
    EXPECT_EQ(countOf(code, "put_unsafe_value"), 0);
}

TEST(Compiler, GuardComparisonBeforeNeck)
{
    CodeImage image = compileProgram(
        "max(X, Y, X) :- X >= Y.\n"
        "max(X, Y, Y) :- X < Y.\n");
    std::string code = predicateCode(image, "max", 3);
    // The comparison must appear before the neck in each clause.
    size_t cmp = code.find("cmp_ge");
    size_t neck = code.find("neck");
    ASSERT_NE(cmp, std::string::npos);
    ASSERT_NE(neck, std::string::npos);
    EXPECT_LT(cmp, neck) << "guard evaluates before the neck";
}

TEST(Compiler, CutInGuardUsesPlainCut)
{
    CodeImage image = compileProgram("f(0, zero) :- !.\nf(_, other).\n");
    std::string code = predicateCode(image, "f", 2);
    EXPECT_EQ(countOf(code, "cut"), 1);
    EXPECT_EQ(countOf(code, "cut_y"), 0);
    EXPECT_EQ(countOf(code, "get_level"), 0);
}

TEST(Compiler, DeepCutUsesGetLevel)
{
    CodeImage image =
        compileProgram("p(X) :- q(X), !, r(X).\nq(_).\nr(_).\n");
    std::string code = predicateCode(image, "p", 1);
    EXPECT_EQ(countOf(code, "get_level"), 1);
    EXPECT_EQ(countOf(code, "cut_y"), 1);
}

TEST(Compiler, InlineArithmetic)
{
    CodeImage image = compileProgram("double(X, Y) :- Y is X + X.");
    std::string code = predicateCode(image, "double", 2);
    EXPECT_EQ(countOf(code, "add"), 1);
    EXPECT_EQ(countOf(code, "escape"), 0);
}

TEST(Compiler, GenericArithmeticUsesEscape)
{
    CompilerOptions options;
    options.integerArithmetic = false;
    CodeImage image =
        compileProgram("double(X, Y) :- Y is X + X.", "", options);
    std::string code = predicateCode(image, "double", 2);
    EXPECT_EQ(countOf(code, "add"), 0);
    // is/2 becomes a call to the escape stub.
    EXPECT_EQ(countOf(code, "execute"), 1);
    const PredicateInfo *is_stub = image.find({internAtom("is"), 2});
    ASSERT_NE(is_stub, nullptr);
}

TEST(Compiler, StaticListCellsCostTwoInstructions)
{
    // §4.1: a statically known list cell costs two instructions
    // (unlike PLM's single cdr-coded one).
    CodeImage image5 = compileProgram("l([1,2,3,4,5]).");
    CodeImage image10 = compileProgram("l([1,2,3,4,5,6,7,8,9,10]).");
    const PredicateInfo *p5 = image5.find({internAtom("l"), 1});
    const PredicateInfo *p10 = image10.find({internAtom("l"), 1});
    EXPECT_EQ(p10->instructions - p5->instructions, 10u);
}

TEST(Compiler, SwitchTablesAreTheOnlyMultiWordInstructions)
{
    CodeImage image = compileProgram(
        "f(a). f(b). f(c).\n"
        "g([]). g([_|_]).\n");
    const PredicateInfo *f = image.find({internAtom("f"), 1});
    // 3 constants -> switch_on_term (4 words) + switch_on_constant
    // (2*3+1 words): instruction count < word count.
    EXPECT_GT(f->words, f->instructions);
}

TEST(Compiler, AnonymousVarsBecomeVoids)
{
    CodeImage image = compileProgram("f(g(_, _, _)).");
    std::string code = predicateCode(image, "f", 1);
    // Three consecutive anonymous vars coalesce into one unify_void.
    EXPECT_EQ(countOf(code, "unify_void"), 1);
}

TEST(Compiler, DisjunctionCreatesAuxPredicate)
{
    CodeImage image = compileProgram("p(X) :- (X = a ; X = b).");
    bool found_aux = false;
    for (const auto &[functor, info] : image.predicates) {
        if (atomText(functor.name).rfind("$aux", 0) == 0)
            found_aux = true;
    }
    EXPECT_TRUE(found_aux);
}

TEST(Compiler, QuerySolutionSlotsNamed)
{
    CodeImage image = compileProgram("p(1, 2).", "p(X, Y)");
    ASSERT_EQ(image.querySolutionSlots.size(), 2u);
    EXPECT_EQ(image.querySolutionSlots[0].first, "X");
    EXPECT_EQ(image.querySolutionSlots[1].first, "Y");
    EXPECT_NE(image.queryEntry, 0u);
}

TEST(Compiler, LibraryExcludedFromProgramSize)
{
    Compiler compiler;
    compiler.addProgram("p(a).");
    compiler.addLibrary("libpred(x). libpred(y).");
    CodeImage image = compiler.compile();
    size_t instr = 0;
    size_t words = 0;
    image.programSize(instr, words);
    // Only p/1's code counts.
    const PredicateInfo *p = image.find({internAtom("p"), 1});
    EXPECT_EQ(instr, p->instructions);
}

TEST(Compiler, UndefinedPredicateGetsDynamicStub)
{
    // An undefined predicate compiles to a dynamic-dispatch trap: a
    // call still fails while the clause store has no clauses for it,
    // but assert/1 (or --db-facts) can define it at run time.
    setLoggingEnabled(false);
    CodeImage image = compileProgram("p :- missing_thing.");
    setLoggingEnabled(true);
    const PredicateInfo *stub =
        image.find({internAtom("missing_thing"), 0});
    ASSERT_NE(stub, nullptr);
    Instr first(image.words[stub->entry - image.base]);
    EXPECT_EQ(first.opcode(), Opcode::Escape);
    EXPECT_EQ(first.value(),
              static_cast<uint32_t>(BuiltinId::DynamicCall));
    EXPECT_TRUE(image.isDynamic({internAtom("missing_thing"), 0}));
    EXPECT_NE(image.dynRetryEntry, 0u);
}

TEST(Compiler, StaticProgramEmitsNoDynamicMachinery)
{
    // No dynamic/1, no asserts, nothing undefined: the image must be
    // free of dynamic-dispatch machinery (bit-identical guarantee for
    // static programs).
    CodeImage image = compileProgram("p :- q.\nq.\n");
    EXPECT_EQ(image.dynRetryEntry, 0u);
    EXPECT_TRUE(image.dynStubs.empty());
    EXPECT_TRUE(image.dynamicDecls.empty());
    EXPECT_TRUE(image.dynamicInit.empty());
}

TEST(Compiler, DynamicDeclarationCompilesToStubAndInit)
{
    Compiler compiler;
    compiler.addProgram(":- dynamic(fact/2).\n"
                        "fact(a, 1).\n"
                        "fact(b, 2).\n"
                        "use(X, Y) :- fact(X, Y).\n");
    CodeImage image = compiler.compile();
    Functor f{internAtom("fact"), 2};
    ASSERT_TRUE(image.isDynamic(f));
    const PredicateInfo *stub = image.find(f);
    ASSERT_NE(stub, nullptr);
    Instr first(image.words[stub->entry - image.base]);
    EXPECT_EQ(first.opcode(), Opcode::Escape);
    EXPECT_EQ(first.value(),
              static_cast<uint32_t>(BuiltinId::DynamicCall));
    // The clauses skipped static compilation and ride along as
    // canonical init text in source order.
    ASSERT_EQ(image.dynamicInit.size(), 2u);
    EXPECT_EQ(image.dynamicInit[0], "fact(a,1)");
    EXPECT_EQ(image.dynamicInit[1], "fact(b,2)");
    EXPECT_NE(image.dynRetryEntry, 0u);
}

TEST(Compiler, CallsAreMarkedAsInferences)
{
    CodeImage image = compileProgram("p :- q.\nq.\n");
    const PredicateInfo *p = image.find({internAtom("p"), 0});
    bool found_marked_execute = false;
    for (size_t i = 0; i < p->words; ++i) {
        Instr instr(image.words[p->entry - image.base + i]);
        if (instr.opcode() == Opcode::Execute && instr.inferenceMark())
            found_marked_execute = true;
    }
    EXPECT_TRUE(found_marked_execute);
}

TEST(Compiler, LinkedCallTargetsResolve)
{
    CodeImage image = compileProgram("p :- q.\nq.\n", "p");
    const PredicateInfo *p = image.find({internAtom("p"), 0});
    const PredicateInfo *q = image.find({internAtom("q"), 0});
    Instr execute(image.words[p->entry - image.base]);
    ASSERT_EQ(execute.opcode(), Opcode::Execute);
    EXPECT_EQ(execute.value(), q->entry);
}

TEST(Compiler, ConflictingArgumentRegistersGetMoved)
{
    // p(X, Y) :- q(Y, X): A0 and A1 swap; a register move must break
    // the cycle.
    CodeImage image = compileProgram("p(X, Y) :- q(Y, X).\nq(_, _).\n");
    std::string code = predicateCode(image, "p", 2);
    EXPECT_GE(countOf(code, "move2"), 1);
}

TEST(Compiler, IoAsUnitClausesMode)
{
    CompilerOptions options;
    options.ioAsUnitClauses = true;
    CodeImage image = compileProgram("p :- write(x), nl.", "", options);
    const PredicateInfo *w = image.find({internAtom("write"), 1});
    ASSERT_NE(w, nullptr);
    // The unit clause is a bare proceed: call/return = 5 cycles.
    Instr first(image.words[w->entry - image.base]);
    EXPECT_EQ(first.opcode(), Opcode::Proceed);
}
