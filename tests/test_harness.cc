/**
 * @file
 * Benchmark-harness integrity tests: every PLM benchmark runs to
 * success in both measurement modes, produces the expected outputs,
 * and stays in the neighbourhood of the paper's published counts and
 * timing shape — so the bench/ binaries cannot silently rot.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "bench_support/harness.hh"
#include "bench_support/paper_data.hh"

using namespace kcm;

namespace
{

class SuiteRuns : public ::testing::TestWithParam<std::string>
{
};

} // namespace

TEST_P(SuiteRuns, IoModeSucceeds)
{
    const PlmBenchmark &bench = plmBenchmark(GetParam());
    BenchRun run = runPlmBenchmark(bench, /*pure=*/false);
    EXPECT_TRUE(run.success);
    EXPECT_GT(run.cycles, 0u);
    EXPECT_GT(run.inferences, 0u);
    EXPECT_GT(run.staticInstructions, 0u);
    EXPECT_GE(run.staticWords, run.staticInstructions);
}

TEST_P(SuiteRuns, PureModeSucceeds)
{
    const PlmBenchmark &bench = plmBenchmark(GetParam());
    BenchRun run = runPlmBenchmark(bench, /*pure=*/true);
    EXPECT_TRUE(run.success);
    // Pure form never performs I/O and is at most as expensive.
    BenchRun io = runPlmBenchmark(bench, /*pure=*/false);
    EXPECT_LE(run.inferences, io.inferences);
}

INSTANTIATE_TEST_SUITE_P(
    Plm, SuiteRuns,
    ::testing::Values("con1", "con6", "divide10", "hanoi", "log10",
                      "mutest", "nrev1", "ops8", "palin25", "pri2", "qs4",
                      "queens", "query", "times10"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Harness, ExactInferenceCountsWhereRecovered)
{
    // These programs were recovered exactly; pin their counts.
    struct Expect
    {
        const char *name;
        bool pure;
        uint64_t inferences;
    };
    const Expect expectations[] = {
        {"con1", false, 6},    {"con1", true, 4},
        {"hanoi", false, 1787}, {"hanoi", true, 767},
        {"nrev1", true, 497},
    };
    for (const auto &expect : expectations) {
        BenchRun run =
            runPlmBenchmark(plmBenchmark(expect.name), expect.pure);
        EXPECT_EQ(run.inferences, expect.inferences)
            << expect.name << (expect.pure ? " (pure)" : " (io)");
    }
}

TEST(Harness, InferenceCountsNearPaper)
{
    // Reconstructed programs must stay within 25% of the published
    // counts (documented exceptions: queens).
    for (const auto &row : paperTable3()) {
        if (row.program == "queens")
            continue;
        BenchRun run = runPlmBenchmark(plmBenchmark(row.program), true);
        double ratio = double(run.inferences) / row.inferences;
        EXPECT_GT(ratio, 0.75) << row.program;
        EXPECT_LT(ratio, 1.25) << row.program;
    }
}

TEST(Harness, KlipsShapeMatchesPaper)
{
    // nrev1 is the canonical fast benchmark; query is the slowest
    // (§4.2's observation about backtracking). Check the ordering.
    BenchRun nrev = runPlmBenchmark(plmBenchmark("nrev1"), true);
    BenchRun query = runPlmBenchmark(plmBenchmark("query"), true);
    BenchRun mutest = runPlmBenchmark(plmBenchmark("mutest"), true);
    EXPECT_GT(nrev.klips, query.klips);
    EXPECT_GT(nrev.klips, mutest.klips);
    // And the absolute value is in the hardware's neighbourhood
    // (paper: 766 Klips).
    EXPECT_GT(nrev.klips, 500);
    EXPECT_LT(nrev.klips, 1200);
}

TEST(Harness, PeakConcatStepNearFifteenCycles)
{
    // The abstract's headline: one concat step = 15 cycles = 833
    // Klips. Allow one cycle of slack.
    const char *program =
        "concat([], L, L).\n"
        "concat([H|T], L, [H|R]) :- concat(T, L, R).\n"
        "gen(0, []) :- !.\n"
        "gen(N, [N|T]) :- M is N - 1, gen(M, T).\n"
        "genonly(N) :- gen(N, _).\n"
        "run(N) :- gen(N, L), concat(L, [x], _).\n"
    "run2(N) :- gen(N, L), concat(L, [x], _), concat(L, [y], _).\n";
    auto cycles_for = [&](const char *goal, int n) {
        KcmSystem system;
        system.consult(program);
        auto result = system.query(std::string(goal) + "(" +
                                   std::to_string(n) + ")");
        return result.cycles;
    };
    // The second concat of run2 runs fully warm; subtracting the
    // single-concat marginal isolates one steady-state step.
    double run2_marginal =
        double(cycles_for("run2", 80) - cycles_for("run2", 40)) / 40.0;
    double run_marginal =
        double(cycles_for("run", 80) - cycles_for("run", 40)) / 40.0;
    double step = run2_marginal - run_marginal;
    EXPECT_GE(step, 13.0);
    EXPECT_LE(step, 17.0);
}

TEST(Harness, HanoiOutputIsTheMoveSequence)
{
    BenchRun run = runPlmBenchmark(plmBenchmark("hanoi"), false);
    // I/O compiled as unit clauses: no output produced, as in the
    // paper's Table 2 measurement.
    EXPECT_TRUE(run.success);
}

TEST(Harness, QueryBenchmarkFindsThePaperedAnswers)
{
    // Run query with real I/O (not unit clauses) and check a known
    // solution appears: the density comparison finds country pairs.
    KcmSystem system;
    system.consult(plmBenchmark("query").program);
    auto result = system.query(
        "(query(S), write(S), nl, fail ; true)");
    ASSERT_TRUE(result.success);
    EXPECT_NE(result.output.find("indonesia"), std::string::npos);
    EXPECT_FALSE(result.output.empty());
}

TEST(Harness, TablePrinterAlignsColumns)
{
    TablePrinter table({"A", "Bbb"});
    table.addRow({"x", "1"});
    table.addRow({"yyyy", "22"});
    std::string out = table.render();
    // All lines equal length (header, separator, rows).
    std::vector<size_t> lengths;
    size_t start = 0;
    while (start < out.size()) {
        size_t end = out.find('\n', start);
        lengths.push_back(end - start);
        start = end + 1;
    }
    ASSERT_EQ(lengths.size(), 4u);
    EXPECT_EQ(lengths[0], lengths[2]);
    EXPECT_EQ(lengths[0], lengths[3]);
}

TEST(Harness, PaperDataTablesConsistent)
{
    EXPECT_EQ(paperTable1().size(), 14u);
    EXPECT_EQ(paperTable2().size(), 14u);
    EXPECT_EQ(paperTable3().size(), 14u);
    EXPECT_EQ(paperTable4().size(), 7u);
    // Every paper row has a matching benchmark program.
    for (const auto &row : paperTable1())
        EXPECT_NO_THROW(plmBenchmark(row.program));
    // The KCM row of Table 4 carries the famous 833/760 peaks.
    for (const auto &row : paperTable4()) {
        if (row.machine == "KCM") {
            EXPECT_EQ(*row.concatKlips, 833);
            EXPECT_EQ(*row.nrevKlips, 760);
            EXPECT_EQ(row.wordBits, 64);
        }
    }
}

TEST(Harness, ResilientRunRecordsRecoveryCounters)
{
    // A benchmark whose fault plan injects a page fault mid-run: the
    // supervised harness path recovers it and records the recovery
    // work in the BenchRun robustness counters; the suite exit code
    // stays 0 because the run ultimately succeeded.
    KcmSystem host;
    host.consult("sumto(0, 0).\n"
                 "sumto(N, S) :- N > 0, M is N - 1, sumto(M, T), "
                 "S is T + N.\n");

    PreparedBenchmark prep;
    prep.name = "faulty_sumto";
    prep.image = host.compileOnly("sumto(500, S)");
    FaultAction fault;
    fault.cycle = 4000;
    fault.kind = FaultKind::InjectPageFault;
    prep.machine.faultPlan.actions.push_back(fault);

    BenchRun run = runPreparedResilient(prep,
                                        /*checkpoint_every_mcycles=*/4,
                                        /*max_retries=*/3);
    EXPECT_TRUE(run.success) << run.failure;
    EXPECT_TRUE(run.failure.empty());
    EXPECT_GE(run.retries + run.restarts, 1u);
    EXPECT_GE(run.checkpoints, 1u);
    EXPECT_GT(run.checkpointBytes, 0u);
    EXPECT_GT(run.recoveryCycles, 0u);
    EXPECT_GT(run.cycles, 0u);
    EXPECT_EQ(benchExitCode({run}), 0);
}

TEST(Harness, ResilientFailureYieldsTrapExitCode)
{
    // Retry exhaustion must surface as a classified failed run and
    // flip the driver exit code to benchTrapExitCode (2) — the same
    // contract the bench drivers document — without disturbing the
    // successful runs around it.
    KcmSystem host;
    host.consult("loop :- loop.\n");

    PreparedBenchmark prep;
    prep.name = "doomed_loop";
    prep.image = host.compileOnly("loop");
    prep.machine.governor.cycleBudget = 2000;

    BenchRun doomed = runPreparedResilient(prep,
                                           /*checkpoint_every_mcycles=*/0,
                                           /*max_retries=*/1);
    EXPECT_FALSE(doomed.success);
    ASSERT_FALSE(doomed.failure.empty());
    EXPECT_NE(doomed.failure.find("resource_error"), std::string::npos)
        << doomed.failure;
    EXPECT_TRUE(doomed.trapped);
    EXPECT_GE(doomed.retries + doomed.restarts, 1u);

    BenchRun fine;
    fine.success = true;
    EXPECT_EQ(benchExitCode({fine, doomed}), benchTrapExitCode);
    EXPECT_EQ(benchExitCode({fine}), 0);
}
