/**
 * @file
 * Base utility tests: logging channels, statistics registry, string
 * helpers.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/stats.hh"
#include "base/strutil.hh"

using namespace kcm;

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("broken: ", 42), PanicError);
    try {
        panic("value=", 7);
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: value=7");
    }
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("user error"), FatalError);
}

TEST(Logging, CatFormatsMixedTypes)
{
    EXPECT_EQ(cat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(cat(), "");
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, GroupDump)
{
    StatGroup group("unit");
    Counter hits;
    Counter misses;
    group.add("hits", hits);
    group.add("misses", misses);
    hits += 3;
    ++misses;

    std::ostringstream os;
    group.dump(os);
    EXPECT_EQ(os.str(), "unit.hits 3\nunit.misses 1\n");
}

TEST(Stats, NestedGroups)
{
    StatGroup parent("machine");
    StatGroup child("dcache");
    Counter reads;
    child.add("reads", reads);
    parent.addChild(child);
    reads += 7;

    EXPECT_EQ(parent.lookup("dcache.reads"), 7u);

    std::ostringstream os;
    parent.dump(os);
    EXPECT_EQ(os.str(), "machine.dcache.reads 7\n");
}

TEST(Stats, ResetIsRecursive)
{
    StatGroup parent("p");
    StatGroup child("c");
    Counter a;
    Counter b;
    parent.add("a", a);
    child.add("b", b);
    parent.addChild(child);
    a += 1;
    b += 2;
    parent.reset();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Stats, LookupMissingFatal)
{
    StatGroup group("g");
    EXPECT_THROW(group.lookup("nothing"), FatalError);
    EXPECT_THROW(group.lookup("no.child"), FatalError);
}

TEST(Strutil, StartsWith)
{
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("foo", "foobar"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(Strutil, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strutil, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("\t\n a b \n"), "a b");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strutil, Padding)
{
    EXPECT_EQ(padLeft("7", 3), "  7");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("long", 2), "long");
}

TEST(Strutil, Fixed)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(2.0, 0), "2");
    EXPECT_EQ(fixed(-0.5, 1), "-0.5");
}
