/**
 * @file
 * The always-on query server, in process: wire codec hardening, warm
 * image-cache behaviour (hit/evict/corrupt), connection lifecycle
 * (bad frames, per-connection in-flight caps), and graceful drain
 * accounting. The network chaos harness (bench/server_chaos) covers
 * the same contract against a real daemon process; these tests pin
 * the pieces down deterministically and run in the tier-1 suite.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "core/machine.hh"
#include "core/snapshot.hh"
#include "kcm/kcm.hh"
#include "service/client.hh"
#include "service/image_cache.hh"
#include "service/server.hh"
#include "service/session.hh"
#include "service/wire.hh"

using namespace kcm;
using service::Client;
using service::ClientReply;
using service::IoStatus;

namespace
{

const char *testProgram =
    "sumto(0, 0).\n"
    "sumto(N, S) :- N > 0, M is N - 1, sumto(M, T), S is T + N.\n";

/** A running server on an ephemeral port plus a connected client. */
struct Harness
{
    std::unique_ptr<service::Server> server;
    Client client;

    explicit Harness(service::ServerOptions options = {})
    {
        options.consultStdlib = false; // fast template compiles
        server = std::make_unique<service::Server>(options);
        server->start();
        if (!client.connect("127.0.0.1", server->port(), 5'000))
            fatal("harness cannot connect: ", client.error());
    }
};

} // namespace

// ------------------------------------------------------------------ //
// Wire codec
// ------------------------------------------------------------------ //

TEST(Wire, ParsesFlatObjectsAndRejectsEverythingElse)
{
    service::JsonObject obj;
    std::string err;

    ASSERT_TRUE(service::parseJsonObject(
        R"({"op": "query", "n": 42, "x": -1.5, "ok": true,)"
        R"( "none": null, "answers": ["a", "b"]})",
        obj, err))
        << err;
    EXPECT_EQ(obj["op"].str, "query");
    EXPECT_EQ(obj["n"].asInt(), 42);
    EXPECT_TRUE(obj["ok"].boolean);
    ASSERT_EQ(obj["answers"].items.size(), 2u);
    EXPECT_EQ(obj["answers"].items[1].str, "b");

    const char *bad[] = {
        "",                                  // empty
        "[1, 2]",                            // not an object
        "{\"a\": 1",                         // truncated
        "{\"a\": {\"nested\": 1}}",          // nested object
        "{\"a\": [[1]]}",                    // nested array
        "{\"a\": 1} trailing",               // trailing bytes
        "{\"a\": \"unterminated",            // unterminated string
        "\x01\x02garbage",                   // binary junk
        "{\"dup\": 1, \"dup\": 1,}",         // trailing comma
    };
    for (const char *text : bad) {
        service::JsonObject out;
        EXPECT_FALSE(service::parseJsonObject(text, out, err))
            << "accepted: " << text;
        EXPECT_FALSE(err.empty());
    }
}

TEST(Wire, QuoteRoundTripsControlCharactersAndUnicodeEscapes)
{
    const std::string nasty = "a\"b\\c\nd\te\x01f";
    service::JsonObject obj;
    std::string err;
    ASSERT_TRUE(service::parseJsonObject(
        "{\"s\": " + service::jsonQuote(nasty) + "}", obj, err))
        << err;
    EXPECT_EQ(obj["s"].str, nasty);

    ASSERT_TRUE(service::parseJsonObject(
        R"({"s": "Aé 😀"})", obj, err))
        << err;
    EXPECT_EQ(obj["s"].str, "A\xc3\xa9 \xf0\x9f\x98\x80");
}

// ------------------------------------------------------------------ //
// Image cache
// ------------------------------------------------------------------ //

TEST(ImageCache, KeyCoversProgramGoalAndConfig)
{
    MachineConfig config;
    uint64_t base = service::imageCacheKey("p.", "g", config);
    EXPECT_NE(base, service::imageCacheKey("p2.", "g", config));
    EXPECT_NE(base, service::imageCacheKey("p.", "g2", config));
    MachineConfig oracle = config;
    oracle.fastDispatch = !config.fastDispatch;
    EXPECT_NE(base, service::imageCacheKey("p.", "g", oracle));
    // Field-boundary separation: moving a byte between program and
    // goal must change the key.
    EXPECT_NE(service::imageCacheKey("ab", "c", config),
              service::imageCacheKey("a", "bc", config));
}

TEST(ImageCache, EvictsLruUnderBudgetAndRefusesCorruptEntries)
{
    CodeImage image = [&] {
        KcmSystem host;
        host.consult(testProgram);
        return host.compileOnly("sumto(5, S)");
    }();
    Machine machine;
    machine.load(image);
    Snapshot snap = takeSnapshot(machine);
    const size_t snap_bytes = snap.bytes.size();

    // Budget for exactly two entries: inserting a third evicts the
    // least recently used.
    service::ImageCache cache(2 * snap_bytes + snap_bytes / 2);
    cache.insert(1, snap);
    cache.insert(2, snap);
    ASSERT_TRUE(cache.lookup(1)); // touch: 2 is now LRU
    cache.insert(3, snap);
    EXPECT_TRUE(cache.lookup(1));
    EXPECT_FALSE(cache.lookup(2)) << "LRU entry should have evicted";
    EXPECT_TRUE(cache.lookup(3));
    EXPECT_EQ(cache.stats().evictions, 1u);

    // Corruption: the next lookup of the poisoned entry must detect
    // it, evict it, and report a miss — never hand out a bad image.
    ASSERT_EQ(cache.corruptOneForTesting(), 1u);
    service::ImageCacheStats before = cache.stats();
    size_t served = 0;
    for (uint64_t key : {uint64_t(1), uint64_t(3)})
        if (auto hit = cache.lookup(key)) {
            std::string why;
            EXPECT_TRUE(validateSnapshot(*hit, &why)) << why;
            ++served;
        }
    EXPECT_EQ(served, 1u);
    EXPECT_EQ(cache.stats().corruptEvictions,
              before.corruptEvictions + 1);
}

// ------------------------------------------------------------------ //
// Session: the corrupt-template restore path
// ------------------------------------------------------------------ //

TEST(Session, CorruptWarmTemplateFailsClassifiedNotFatal)
{
    CodeImage image = [&] {
        KcmSystem host;
        host.consult(testProgram);
        return host.compileOnly("sumto(5, S)");
    }();
    service::SessionOptions options;
    Machine machine(options.machine);
    machine.load(image);
    Snapshot snap = takeSnapshot(machine);
    snap.bytes[snap.bytes.size() / 2] ^= 0x40;

    service::Session session(
        std::make_shared<const Snapshot>(std::move(snap)), options);
    service::QueryOutcome out = session.run();
    EXPECT_EQ(out.status, service::QueryStatus::Failed);
    EXPECT_EQ(out.failure.classification, "corrupt_image_template");
}

// ------------------------------------------------------------------ //
// Server: protocol, cache, lifecycle, drain
// ------------------------------------------------------------------ //

TEST(Server, WarmCacheHitMatchesColdMissBitIdentically)
{
    Harness h;
    ClientReply cold =
        h.client.query("q0", testProgram, "sumto(50, S)", 1);
    ASSERT_EQ(cold.io, IoStatus::Ok) << cold.raw;
    ASSERT_EQ(cold.status(), "completed") << cold.raw;
    EXPECT_EQ(cold.str("cache"), "miss");

    ClientReply warm =
        h.client.query("q1", testProgram, "sumto(50, S)", 1);
    ASSERT_EQ(warm.status(), "completed") << warm.raw;
    EXPECT_EQ(warm.str("cache"), "hit");
    ASSERT_EQ(warm.fields["answers"].items.size(), 1u);
    EXPECT_EQ(warm.fields["answers"].items[0].str,
              cold.fields["answers"].items[0].str);
    EXPECT_EQ(warm.num("cycles"), cold.num("cycles"))
        << "template restore must be invisible to simulated time";

    EXPECT_EQ(h.server->cacheStats().hits, 1u);
    EXPECT_EQ(h.server->cacheStats().misses, 1u);
}

TEST(Server, MalformedFramesGetBadRequestAndTheConnectionSurvives)
{
    Harness h;
    const char *frames[] = {
        "\x02\xff not json at all",
        "{\"op\": \"query\"",           // truncated
        "{\"op\": \"query\"}",          // missing program/goal
        "{\"op\": \"no_such_op\"}",
        "{\"op\": \"corrupt_cache\"}",  // chaos hook not enabled
        "{\"op\": \"query\", \"program\": \"p.\", \"goal\": \"g\","
        " \"max_solutions\": \"ten\"}", // wrong field type
    };
    for (const char *frame : frames) {
        ASSERT_EQ(h.client.sendLine(frame), IoStatus::Ok);
        ClientReply reply = h.client.readReply(10'000);
        ASSERT_EQ(reply.io, IoStatus::Ok) << frame;
        EXPECT_EQ(reply.status(), "bad_request") << reply.raw;
    }
    // The connection is still serviceable for a real query.
    ClientReply good =
        h.client.query("q", testProgram, "sumto(7, S)", 1);
    EXPECT_EQ(good.status(), "completed") << good.raw;
    EXPECT_EQ(h.server->counters().badRequests, 6u);
}

TEST(Server, CompileErrorsAreBadRequestsNotCrashes)
{
    Harness h;
    ClientReply reply = h.client.query(
        "q", ":- this is not ) valid prolog", "sumto(1, S)", 1);
    ASSERT_EQ(reply.io, IoStatus::Ok);
    EXPECT_EQ(reply.status(), "bad_request") << reply.raw;
    EXPECT_NE(reply.str("error").find("compile_error"),
              std::string::npos)
        << reply.raw;
    // And the server still answers afterwards.
    ClientReply good =
        h.client.query("q2", testProgram, "sumto(3, S)", 1);
    EXPECT_EQ(good.status(), "completed") << good.raw;
}

TEST(Server, PerConnectionInflightCapShedsWithRetryAfter)
{
    service::ServerOptions options;
    options.maxInflightPerConn = 1;
    options.workers = 1;
    Harness h(options);

    // First query occupies the one in-flight slot; firing a second
    // down the same connection before reading the first reply must
    // get the structured overload answer, with a retry hint.
    service::JsonWriter w;
    w.field("op", "query")
        .field("id", "a")
        .field("program", testProgram)
        .field("goal", "sumto(2000, S)")
        .field("max_solutions", uint64_t(1));
    ASSERT_EQ(h.client.sendLine(w.str()), IoStatus::Ok);
    service::JsonWriter w2;
    w2.field("op", "query")
        .field("id", "b")
        .field("program", testProgram)
        .field("goal", "sumto(3, S)")
        .field("max_solutions", uint64_t(1));
    ASSERT_EQ(h.client.sendLine(w2.str()), IoStatus::Ok);

    bool saw_overloaded = false, saw_completed = false;
    for (int i = 0; i < 2; ++i) {
        ClientReply reply = h.client.readReply(30'000);
        ASSERT_EQ(reply.io, IoStatus::Ok);
        if (reply.status() == "overloaded") {
            saw_overloaded = true;
            EXPECT_EQ(reply.str("id"), "b");
            EXPECT_GT(reply.num("retry_after_ms"), 0);
        } else {
            saw_completed = true;
            EXPECT_EQ(reply.status(), "completed") << reply.raw;
            EXPECT_EQ(reply.str("id"), "a");
        }
    }
    EXPECT_TRUE(saw_overloaded);
    EXPECT_TRUE(saw_completed);
    EXPECT_GE(h.server->counters().overloaded, 1u);
}

TEST(Server, ChaosCorruptionHookForcesRecompileNeverAWrongAnswer)
{
    service::ServerOptions options;
    options.chaosHooks = true;
    Harness h(options);

    ClientReply first =
        h.client.query("q0", testProgram, "sumto(30, S)", 1);
    ASSERT_EQ(first.status(), "completed") << first.raw;
    const std::string want = first.fields["answers"].items[0].str;

    ASSERT_EQ(h.client.sendLine("{\"op\": \"corrupt_cache\"}"),
              IoStatus::Ok);
    ClientReply ack = h.client.readReply(10'000);
    ASSERT_EQ(ack.status(), "ok") << ack.raw;
    ASSERT_EQ(ack.num("corrupted"), 1);

    ClientReply after =
        h.client.query("q1", testProgram, "sumto(30, S)", 1);
    ASSERT_EQ(after.status(), "completed") << after.raw;
    EXPECT_EQ(after.str("cache"), "miss")
        << "corrupt entry must not be served as a hit";
    EXPECT_EQ(after.fields["answers"].items[0].str, want);
    EXPECT_GE(h.server->cacheStats().corruptEvictions +
                  h.server->counters().corruptRetries,
              1u);
}

TEST(Server, DrainFinishesAcceptedQueriesAndRefusesNewOnes)
{
    service::ServerOptions options;
    options.workers = 2;
    Harness h(options);

    // Accept a query, then start draining while it is in flight.
    service::JsonWriter w;
    w.field("op", "query")
        .field("id", "inflight")
        .field("program", testProgram)
        .field("goal", "sumto(4000, S)")
        .field("max_solutions", uint64_t(1));
    ASSERT_EQ(h.client.sendLine(w.str()), IoStatus::Ok);

    // Drain only applies to *accepted* queries; wait until the server
    // has admitted this one so the invariant is actually exercised.
    for (int spin = 0; spin < 1000; ++spin) {
        if (h.server->counters().queriesAccepted >= 1)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(h.server->counters().queriesAccepted, 1u);

    h.server->requestDrain();

    // The accepted query's reply must still arrive, then the
    // connection closes (reads stop during drain).
    ClientReply reply = h.client.readReply(30'000);
    ASSERT_EQ(reply.io, IoStatus::Ok);
    EXPECT_EQ(reply.status(), "completed") << reply.raw;
    EXPECT_EQ(reply.str("id"), "inflight");

    h.server->waitDrained();
    service::ServerCounters c = h.server->counters();
    EXPECT_EQ(c.queriesAccepted, c.queriesReplied)
        << "drain lost an accepted query";
    EXPECT_EQ(c.queriesAccepted, 1u);

    // New connections are refused once draining.
    Client late;
    EXPECT_FALSE(late.connect("127.0.0.1", h.server->port(), 1'000));
}

TEST(Server, StatsOpReportsCountersOverTheWire)
{
    Harness h;
    ClientReply q = h.client.query("q", testProgram, "sumto(9, S)", 1);
    ASSERT_EQ(q.status(), "completed");
    ClientReply s = h.client.stats();
    ASSERT_EQ(s.status(), "ok") << s.raw;
    EXPECT_EQ(s.num("queries_accepted"), 1);
    EXPECT_EQ(s.num("queries_replied"), 1);
    EXPECT_EQ(s.num("cache_misses"), 1);
    EXPECT_GE(s.num("requests"), 2);
    ClientReply p = h.client.ping();
    EXPECT_EQ(p.status(), "pong");
}

// ------------------------------------------------------------------ //
// Self-defense: frame bounds, jitter, deadlines, memory, breakers
// ------------------------------------------------------------------ //

namespace
{

/** The wall clock "deadline_abs_ms" is expressed in (ms since the
 *  system_clock epoch), mirroring the server's conversion point. */
uint64_t
wallNowMs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count());
}

/** Deterministic multi-megacycle work for deadline/breaker tests. */
const char *slowProgram =
    "sumc(0, 0).\n"
    "sumc(N, S) :- N > 0, !, M is N - 1, sumc(M, T), S is T + N.\n"
    "itc(0, A, A).\n"
    "itc(N, A, S) :- N > 0, !, sumc(200, T), B is A + T, M is N - 1,\n"
    "                itc(M, B, S).\n"
    "loop :- loop.\n";

/** Heap-hungry work for the memory-governance tests. */
const char *hungryProgram =
    "mklist(0, []).\n"
    "mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).\n";

} // namespace

TEST(Server, OversizeFramesAreClassifiedFrameTooLarge)
{
    // The per-connection buffered-byte bound: a frame past
    // maxLineBytes must be answered with a structured
    // "frame_too_large" — the reader never buffers unboundedly.
    service::ServerOptions options;
    options.maxLineBytes = 1024;
    Harness h(options);

    std::string huge(4096, 'x');
    ASSERT_EQ(h.client.sendLine(huge), IoStatus::Ok);
    ClientReply reply = h.client.readReply(10'000);
    ASSERT_EQ(reply.io, IoStatus::Ok);
    EXPECT_EQ(reply.status(), "bad_request") << reply.raw;
    EXPECT_EQ(reply.str("error"), "frame_too_large") << reply.raw;
    EXPECT_EQ(h.server->counters().frameTooLarge, 1u);
    EXPECT_EQ(h.server->counters().badRequests, 1u);

    // A fresh connection is fully serviceable afterwards.
    Client again;
    ASSERT_TRUE(again.connect("127.0.0.1", h.server->port(), 5'000));
    ClientReply good = again.query("q", testProgram, "sumto(5, S)", 1);
    EXPECT_EQ(good.status(), "completed") << good.raw;
}

TEST(Server, RetryAfterJitterIsDeterministicUnderTheSeed)
{
    // Every retry_after_ms hint carries +0..50% jitter from a seeded
    // generator: two servers with the same seed must emit the same
    // first hint, and the hint must stay inside [base, 1.5*base].
    //
    // The hint's base scales with queue depth, so the overload has to
    // happen against a deterministic queue: query "a" straggles on a
    // chaos slice delay — long enough that it is dequeued and still
    // running when "b" arrives — leaving the queue itself empty.
    auto overload_hint = [](service::Server &server, Client &client) {
        service::JsonWriter slow;
        slow.field("op", "query")
            .field("id", "a")
            .field("program", slowProgram)
            .field("goal", "itc(500, 0, S)")
            .field("max_solutions", uint64_t(1))
            .field("chaos_slice_delay_us", uint64_t(400'000));
        EXPECT_EQ(client.sendLine(slow.str()), IoStatus::Ok);
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        service::JsonWriter quick;
        quick.field("op", "query")
            .field("id", "b")
            .field("program", testProgram)
            .field("goal", "sumto(3, S)")
            .field("max_solutions", uint64_t(1));
        EXPECT_EQ(client.sendLine(quick.str()), IoStatus::Ok);
        int64_t hint = -1;
        for (int i = 0; i < 2; ++i) {
            ClientReply reply = client.readReply(30'000);
            EXPECT_EQ(reply.io, IoStatus::Ok);
            if (reply.status() == "overloaded")
                hint = reply.num("retry_after_ms");
        }
        return hint;
    };

    service::ServerOptions options;
    options.maxInflightPerConn = 1;
    options.workers = 1;
    options.chaosHooks = true;
    options.retryJitterSeed = 0xfeedfacecafebeefull;
    Harness first(options);
    Harness second(options);
    int64_t a = overload_hint(*first.server, first.client);
    int64_t b = overload_hint(*second.server, second.client);

    // Empty queue: base hint 25ms, jitter adds at most 12ms.
    ASSERT_GE(a, 25);
    ASSERT_LE(a, 37);
    EXPECT_EQ(a, b)
        << "same seed, same draw sequence, same hint";
}

TEST(Server, AbsoluteDeadlinePropagatesOverTheWire)
{
    Harness h;

    // Already expired at arrival: shed before execution, zero cycles.
    service::JsonWriter expired;
    expired.field("op", "query")
        .field("id", "late")
        .field("program", slowProgram)
        .field("goal", "itc(2000, 0, S)")
        .field("max_solutions", uint64_t(1))
        .field("deadline_abs_ms", wallNowMs() - 10'000);
    ASSERT_EQ(h.client.sendLine(expired.str()), IoStatus::Ok);
    ClientReply shed = h.client.readReply(30'000);
    ASSERT_EQ(shed.io, IoStatus::Ok);
    EXPECT_EQ(shed.status(), "failed") << shed.raw;
    EXPECT_EQ(shed.str("error"), "deadline_exceeded") << shed.raw;
    EXPECT_EQ(shed.num("cycles"), 0) << shed.raw;

    // Tight but live: the session must stop itself mid-run and
    // report the simulated cycles it burned.
    service::JsonWriter tight;
    tight.field("op", "query")
        .field("id", "tight")
        .field("program", slowProgram)
        .field("goal", "loop")
        .field("max_solutions", uint64_t(1))
        // Generous enough that the deadline cannot expire in transit
        // on a loaded host — the goal never terminates, so only the
        // propagated deadline can produce this reply.
        .field("deadline_abs_ms", wallNowMs() + 400);
    ASSERT_EQ(h.client.sendLine(tight.str()), IoStatus::Ok);
    ClientReply cut = h.client.readReply(30'000);
    ASSERT_EQ(cut.io, IoStatus::Ok);
    EXPECT_EQ(cut.status(), "failed") << cut.raw;
    EXPECT_EQ(cut.str("error"), "deadline_exceeded") << cut.raw;
    EXPECT_GT(cut.num("cycles"), 0) << cut.raw;
    EXPECT_EQ(cut.num("attempts"), 1)
        << "an absolute deadline must never be extended by retries";

    ClientReply s = h.client.stats();
    ASSERT_EQ(s.status(), "ok");
    EXPECT_GE(s.num("deadline_propagated_sheds"), 1);
}

TEST(Server, MemoryBudgetOverTheWireIsClassifiedAndCatchable)
{
    service::ServerOptions options;
    options.session.maxRetries = 0; // the budget re-traps determinis-
                                    // tically; fail fast
    Harness h(options);

    service::JsonWriter hog;
    hog.field("op", "query")
        .field("id", "hog")
        .field("program", hungryProgram)
        .field("goal", "mklist(200000, L)")
        .field("max_solutions", uint64_t(1))
        .field("memory_budget_bytes", uint64_t(1) << 20);
    ASSERT_EQ(h.client.sendLine(hog.str()), IoStatus::Ok);
    ClientReply blown = h.client.readReply(60'000);
    ASSERT_EQ(blown.io, IoStatus::Ok);
    EXPECT_EQ(blown.status(), "failed") << blown.raw;
    EXPECT_EQ(blown.str("error"), "resource_error(memory)")
        << blown.raw;

    // The same ceiling is an ordinary catchable ball: a guarded
    // variant of the same work completes.
    service::JsonWriter guarded;
    guarded.field("op", "query")
        .field("id", "guarded")
        .field("program", hungryProgram)
        .field("goal", "catch(mklist(200000, _), resource_error(E), true)")
        .field("max_solutions", uint64_t(1))
        .field("memory_budget_bytes", uint64_t(1) << 20);
    ASSERT_EQ(h.client.sendLine(guarded.str()), IoStatus::Ok);
    ClientReply caught = h.client.readReply(60'000);
    ASSERT_EQ(caught.io, IoStatus::Ok);
    ASSERT_EQ(caught.status(), "completed") << caught.raw;
    ASSERT_EQ(caught.fields["answers"].items.size(), 1u);
    EXPECT_NE(caught.fields["answers"].items[0].str.find("E = memory"),
              std::string::npos)
        << caught.raw;

    ClientReply s = h.client.stats();
    ASSERT_EQ(s.status(), "ok");
    EXPECT_GE(s.num("mem_aborts"), 1);
}

TEST(Server, BreakerOpensFastFailsAndClosesViaHalfOpenProbe)
{
    // Full breaker lifecycle over the wire, on one query shape (the
    // shape hash ignores deadlines, so a shape opened by tight-
    // deadline failures can be probed closed by a generous one).
    service::ServerOptions options;
    options.session.maxRetries = 0;
    options.breaker.failureThreshold = 2;
    options.breaker.openMs = 200;
    Harness h(options);
    const char *goal = "itc(500, 0, S)";

    // Two classified failures open the breaker...
    for (int i = 0; i < 2; ++i) {
        ClientReply r = h.client.query(cat("f", i), slowProgram, goal,
                                       1, /*deadline_ms=*/1);
        ASSERT_EQ(r.status(), "failed") << r.raw;
        ASSERT_EQ(r.str("error"), "deadline_exceeded") << r.raw;
    }
    EXPECT_EQ(h.server->breakerStats().opened, 1u);

    // ...after which the same shape fast-fails with a retry hint,
    // spending zero machine cycles.
    ClientReply fast = h.client.query("fast", slowProgram, goal, 1);
    ASSERT_EQ(fast.status(), "failed") << fast.raw;
    EXPECT_EQ(fast.str("error"), "circuit_open") << fast.raw;
    EXPECT_GT(fast.num("retry_after_ms"), 0) << fast.raw;
    EXPECT_EQ(h.server->breakerStats().fastFails, 1u);
    EXPECT_EQ(h.server->counters().breakerFastFails, 1u);

    // After the cooldown one probe is admitted; without the killer
    // deadline it completes, closing the breaker for good.
    std::this_thread::sleep_for(std::chrono::milliseconds(350));
    ClientReply probe = h.client.query("probe", slowProgram, goal, 1);
    ASSERT_EQ(probe.status(), "completed") << probe.raw;
    service::BreakerStats bs = h.server->breakerStats();
    EXPECT_EQ(bs.probes, 1u);
    EXPECT_EQ(bs.closed, 1u);
    EXPECT_EQ(bs.openShapes, 0u);

    // Closed means closed: the next query runs normally.
    ClientReply after = h.client.query("after", slowProgram, goal, 1);
    EXPECT_EQ(after.status(), "completed") << after.raw;

    ClientReply s = h.client.stats();
    ASSERT_EQ(s.status(), "ok");
    EXPECT_EQ(s.num("breaker_open"), 1);
    EXPECT_EQ(s.num("breaker_closed"), 1);
    EXPECT_EQ(s.num("breaker_fast_fails"), 1);
    EXPECT_EQ(s.num("breaker_probes"), 1);
}
