/**
 * @file
 * Deterministic snapshot/restore.
 *
 * A snapshot taken at a run boundary and restored into a freshly
 * constructed Machine must continue exactly: every simulated metric
 * (cycles, instructions, inferences, cache hits, growth counters) of
 * the resumed run equals the uninterrupted reference run, including
 * across firmware stack-zone growth, and a snapshot of the restored
 * machine is byte-identical to the snapshot it was restored from.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "core/machine.hh"
#include "core/snapshot.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

/** Compile program+goal with the default compiler options. */
CodeImage
compileQuery(const std::string &program, const std::string &goal)
{
    KcmSystem host;
    host.consult(program);
    return host.compileOnly(goal);
}

/** The metrics that must survive a restore bit-exactly. */
struct Metrics
{
    uint64_t cycles, instructions, inferences;
    uint64_t dcacheHits, dcacheMisses, ccacheHits, ccacheMisses;
    uint64_t choicePoints, trailPushes, growths;

    bool
    operator==(const Metrics &o) const
    {
        return cycles == o.cycles && instructions == o.instructions &&
               inferences == o.inferences && dcacheHits == o.dcacheHits &&
               dcacheMisses == o.dcacheMisses &&
               ccacheHits == o.ccacheHits &&
               ccacheMisses == o.ccacheMisses &&
               choicePoints == o.choicePoints &&
               trailPushes == o.trailPushes && growths == o.growths;
    }
};

Metrics
metricsOf(Machine &m)
{
    return Metrics{
        m.cycles(),
        m.instructions(),
        m.inferences(),
        m.mem().dataCache().readHits.value() +
            m.mem().dataCache().writeHits.value(),
        m.mem().dataCache().readMisses.value() +
            m.mem().dataCache().writeMisses.value(),
        m.mem().codeCache().readHits.value(),
        m.mem().codeCache().readMisses.value(),
        m.choicePointsCreated.value(),
        m.trailPushes.value(),
        m.stackZoneGrowths.value(),
    };
}

const char *countProgram =
    "count(0).\n"
    "count(N) :- N > 0, M is N - 1, count(M).\n";

const char *mklistProgram =
    "mklist(0, []).\n"
    "mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).\n";

} // namespace

TEST(Snapshot, RestoredRunContinuesBitIdentically)
{
    CodeImage image = compileQuery(countProgram, "count(200)");

    // Reference: the uninterrupted run.
    Machine reference;
    reference.load(image);
    ASSERT_EQ(reference.run(), RunStatus::SolutionFound);
    Metrics full = metricsOf(reference);

    // Interrupted: trap on a half-way cycle budget, snapshot, restore
    // into a fresh machine, resume there.
    MachineConfig config;
    config.governor.cycleBudget = full.cycles / 2;
    Machine source(config);
    source.load(image);
    ASSERT_EQ(source.run(), RunStatus::Trapped);
    ASSERT_EQ(source.lastTrap().kind, TrapKind::Abort);

    Snapshot snap = takeSnapshot(source);
    EXPECT_FALSE(snap.bytes.empty());

    Machine restored(config);
    restoreSnapshot(restored, snap);
    EXPECT_TRUE(restored.trapped());
    EXPECT_EQ(restored.cycles(), source.cycles());

    restored.setCycleBudget(0);
    ASSERT_EQ(restored.resume(), RunStatus::SolutionFound);
    EXPECT_EQ(metricsOf(restored), full)
        << "restored continuation diverged from the uninterrupted run";

    // The original machine, resumed in place, matches too (the
    // snapshot did not perturb it).
    source.setCycleBudget(0);
    ASSERT_EQ(source.resume(), RunStatus::SolutionFound);
    EXPECT_EQ(metricsOf(source), full);
}

TEST(Snapshot, SnapshotOfRestoredMachineIsByteIdentical)
{
    CodeImage image = compileQuery(countProgram, "count(120)");
    MachineConfig config;
    config.governor.cycleBudget = 1500;
    Machine source(config);
    source.load(image);
    ASSERT_EQ(source.run(), RunStatus::Trapped);

    Snapshot first = takeSnapshot(source);
    Machine restored(config);
    restoreSnapshot(restored, first);
    Snapshot second = takeSnapshot(restored);
    EXPECT_EQ(first.bytes, second.bytes);
}

TEST(Snapshot, RoundTripAcrossGrownStackZone)
{
    // The interrupted run crosses firmware stack growth (64-word heap
    // quota, list of 200 cons cells): the snapshot must carry the
    // grown zone limits and the growth charges so the continuation
    // still matches the uninterrupted governed run exactly.
    CodeImage image = compileQuery(mklistProgram, "mklist(200, L)");
    MachineConfig config;
    config.governor.globalQuotaWords = 64;

    Machine reference(config);
    reference.load(image);
    ASSERT_EQ(reference.run(), RunStatus::SolutionFound);
    Metrics full = metricsOf(reference);
    ASSERT_GE(full.growths, 1u) << "test premise: growth must occur";

    MachineConfig budgeted = config;
    budgeted.governor.cycleBudget = full.cycles * 3 / 4;
    Machine source(budgeted);
    source.load(image);
    ASSERT_EQ(source.run(), RunStatus::Trapped);
    ASSERT_GE(source.stackZoneGrowths.value(), 1u)
        << "test premise: snapshot must be taken after a growth";

    Snapshot snap = takeSnapshot(source);
    Machine restored(budgeted);
    restoreSnapshot(restored, snap);
    restored.setCycleBudget(0);
    ASSERT_EQ(restored.resume(), RunStatus::SolutionFound);
    EXPECT_EQ(metricsOf(restored), full);
    EXPECT_EQ(restored.lastSolution().toString(),
              reference.lastSolution().toString());
}

TEST(Snapshot, RestoreBridgesDispatchCores)
{
    // The two cores are cycle-identical by construction, so a
    // snapshot taken on the fast core must continue bit-identically
    // on the oracle core — state is state.
    CodeImage image = compileQuery(countProgram, "count(150)");

    MachineConfig fast_config;
    fast_config.fastDispatch = true;
    Machine reference(fast_config);
    reference.load(image);
    ASSERT_EQ(reference.run(), RunStatus::SolutionFound);
    Metrics full = metricsOf(reference);

    MachineConfig budgeted = fast_config;
    budgeted.governor.cycleBudget = full.cycles / 2;
    Machine source(budgeted);
    source.load(image);
    ASSERT_EQ(source.run(), RunStatus::Trapped);
    Snapshot snap = takeSnapshot(source);

    MachineConfig oracle_config = budgeted;
    oracle_config.fastDispatch = false;
    Machine restored(oracle_config);
    restoreSnapshot(restored, snap);
    restored.setCycleBudget(0);
    ASSERT_EQ(restored.resume(), RunStatus::SolutionFound);
    EXPECT_EQ(metricsOf(restored), full);
}

TEST(Snapshot, NextSolutionAfterRestoreMatches)
{
    // Snapshot at a solution boundary; the restored machine
    // backtracks into the same next solution at the same cost.
    CodeImage image = compileQuery("p(1). p(2). p(3).", "p(X)");

    Machine source;
    source.load(image);
    ASSERT_EQ(source.run(), RunStatus::SolutionFound);
    Snapshot snap = takeSnapshot(source);

    Machine restored;
    restoreSnapshot(restored, snap);
    ASSERT_EQ(source.nextSolution(), RunStatus::SolutionFound);
    ASSERT_EQ(restored.nextSolution(), RunStatus::SolutionFound);
    EXPECT_EQ(restored.lastSolution().toString(),
              source.lastSolution().toString());
    EXPECT_EQ(restored.cycles(), source.cycles());
    EXPECT_EQ(restored.instructions(), source.instructions());
}

TEST(Snapshot, HostOutputAndTraceSurviveRestore)
{
    CodeImage image =
        compileQuery("greet :- write(hello), nl.", "greet");
    Machine source;
    source.load(image);
    ASSERT_EQ(source.run(), RunStatus::SolutionFound);
    ASSERT_EQ(source.output(), "hello\n");

    Snapshot snap = takeSnapshot(source);
    Machine restored;
    restoreSnapshot(restored, snap);
    EXPECT_EQ(restored.output(), "hello\n");
    EXPECT_EQ(restored.recentTrace(8), source.recentTrace(8));
    EXPECT_EQ(restored.stateString(), source.stateString());
}

TEST(Snapshot, ThrowDeliveryAfterRestoreBridgesCores)
{
    // Interrupt inside a protected goal *before* the throw, snapshot,
    // restore into the other execution core: the ball must still be
    // delivered to the catcher at the identical simulated cost. This
    // is the catch/throw ↔ snapshot interaction: the catch marker
    // lives in snapshotted machine state, not host state.
    const char *program =
        "work(0).\n"
        "work(N) :- N > 0, M is N - 1, work(M).\n"
        "boom(R) :- catch((work(300), throw(ball(7)), R = no),\n"
        "                 ball(V), R = caught(V)).\n";
    CodeImage image = compileQuery(program, "boom(R)");

    for (bool fast : {true, false}) {
        MachineConfig config;
        config.fastDispatch = fast;

        Machine reference(config);
        reference.load(image);
        ASSERT_EQ(reference.run(), RunStatus::SolutionFound);
        Metrics full = metricsOf(reference);

        // Interrupt with a host slice stop halfway through work/1:
        // strictly before the throw is reached.
        Machine source(config);
        source.load(image);
        source.setSliceStop(full.cycles / 2);
        ASSERT_EQ(source.run(), RunStatus::Trapped);
        ASSERT_TRUE(source.sliceExpired());
        Snapshot snap = takeSnapshot(source);

        MachineConfig cross = config;
        cross.fastDispatch = !fast;
        Machine restored(cross);
        restoreSnapshot(restored, snap);
        restored.setSliceStop(0);
        ASSERT_EQ(restored.resume(), RunStatus::SolutionFound);
        EXPECT_EQ(metricsOf(restored), full)
            << "cross-core continuation diverged (fast=" << fast << ")";
        EXPECT_EQ(restored.lastSolution().toString(),
                  reference.lastSolution().toString());
        EXPECT_NE(restored.lastSolution().toString().find("caught(7)"),
                  std::string::npos)
            << restored.lastSolution().toString();
    }
}

TEST(Snapshot, GovernorRecoveryAfterRestoreBridgesCores)
{
    // The cycle budget is snapshotted as an absolute stop cycle: a
    // restored machine must exhaust the governor at the identical
    // cycle and deliver the same catchable resource_error ball.
    const char *program =
        "spin(0).\n"
        "spin(N) :- N > 0, M is N - 1, spin(M).\n"
        "guarded(R) :- catch(spin(100000), resource_error(K),\n"
        "                    R = caught(K)).\n";
    CodeImage image = compileQuery(program, "guarded(R)");

    for (bool fast : {true, false}) {
        MachineConfig config;
        config.fastDispatch = fast;
        config.governor.cycleBudget = 4000;

        Machine reference(config);
        reference.load(image);
        ASSERT_EQ(reference.run(), RunStatus::SolutionFound);
        Metrics full = metricsOf(reference);
        ASSERT_NE(reference.lastSolution().toString().find("caught"),
                  std::string::npos)
            << "test premise: the budget must exhaust inside catch/3";

        Machine source(config);
        source.load(image);
        source.setSliceStop(full.cycles / 2);
        ASSERT_EQ(source.run(), RunStatus::Trapped);
        ASSERT_TRUE(source.sliceExpired());
        Snapshot snap = takeSnapshot(source);

        MachineConfig cross = config;
        cross.fastDispatch = !fast;
        Machine restored(cross);
        restoreSnapshot(restored, snap);
        restored.setSliceStop(0);
        ASSERT_EQ(restored.resume(), RunStatus::SolutionFound);
        EXPECT_EQ(metricsOf(restored), full)
            << "cross-core continuation diverged (fast=" << fast << ")";
        EXPECT_EQ(restored.lastSolution().toString(),
                  reference.lastSolution().toString());
    }
}

TEST(Snapshot, CorruptImagesAreRejected)
{
    CodeImage image = compileQuery("p(1).", "p(X)");
    Machine source;
    source.load(image);
    Snapshot snap = takeSnapshot(source);

    Snapshot bad_magic = snap;
    bad_magic.bytes[0] ^= 0xFF;
    Machine victim;
    EXPECT_THROW(restoreSnapshot(victim, bad_magic), FatalError);

    Snapshot truncated = snap;
    truncated.bytes.resize(truncated.bytes.size() / 2);
    EXPECT_THROW(restoreSnapshot(victim, truncated), FatalError);
}

TEST(Snapshot, TemplateRestoresManyTimesAcrossCoresUnmodified)
{
    // The server's warm image cache snapshots the post-download
    // machine ONCE and restores that shared template for every later
    // query with the same (program, goal, config) key. The contract:
    // every restore yields the same run, on either dispatch core, and
    // the template buffer itself is never modified by being used.
    CodeImage image = compileQuery(mklistProgram, "mklist(40, L)");

    Machine loaded;
    loaded.load(image);
    const Snapshot tmpl = takeSnapshot(loaded);
    const std::vector<uint8_t> pristine = tmpl.bytes;

    // Reference run: straight from load(), no snapshot involved.
    Machine reference;
    reference.load(image);
    ASSERT_EQ(reference.run(), RunStatus::SolutionFound);
    const Metrics want = metricsOf(reference);

    // Restore-many, alternating the fast and oracle cores.
    for (int i = 0; i < 6; ++i) {
        MachineConfig config;
        config.fastDispatch = (i % 2 == 0);
        Machine worker(config);
        restoreSnapshot(worker, tmpl);
        ASSERT_EQ(worker.run(), RunStatus::SolutionFound)
            << "restore #" << i;
        EXPECT_EQ(metricsOf(worker), want)
            << "restore #" << i << " diverged from the direct load";
        EXPECT_EQ(tmpl.bytes, pristine)
            << "restore #" << i << " modified the shared template";
    }

    // The server restores the same shared buffer from concurrent
    // worker threads; races would corrupt answers, not just bytes.
    std::vector<std::thread> workers;
    std::atomic<int> mismatches{0};
    for (int i = 0; i < 4; ++i) {
        workers.emplace_back([&, i] {
            MachineConfig config;
            config.fastDispatch = (i % 2 == 0);
            Machine worker(config);
            restoreSnapshot(worker, tmpl);
            if (worker.run() != RunStatus::SolutionFound ||
                !(metricsOf(worker) == want))
                ++mismatches;
        });
    }
    for (std::thread &t : workers)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(tmpl.bytes, pristine);
}

TEST(Snapshot, ValidateSnapshotCatchesBitFlipWithoutAMachine)
{
    // The cheap pre-restore check the image cache runs on every
    // lookup: structural validation must accept a healthy template
    // and reject any single-bit corruption, without needing (or
    // touching) a machine.
    CodeImage image = compileQuery(mklistProgram, "mklist(10, L)");
    Machine loaded;
    loaded.load(image);
    Snapshot tmpl = takeSnapshot(loaded);

    std::string why;
    EXPECT_TRUE(validateSnapshot(tmpl, &why)) << why;

    for (size_t pos : {size_t(16), tmpl.bytes.size() / 2,
                       tmpl.bytes.size() - 1}) {
        Snapshot corrupt = tmpl;
        corrupt.bytes[pos] ^= 0x10;
        EXPECT_FALSE(validateSnapshot(corrupt, &why))
            << "flip at byte " << pos << " went undetected";
    }
}
