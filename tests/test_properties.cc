/**
 * @file
 * Property-based and parameterized sweeps over the whole stack:
 * exact inference-count laws, sorting correctness against std::sort,
 * backtracking restores machine state, solution enumeration
 * completeness, and determinism of the cycle-level simulation.
 */

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

std::string
intList(const std::vector<int> &xs)
{
    std::string s = "[";
    for (size_t i = 0; i < xs.size(); ++i) {
        if (i)
            s += ",";
        s += std::to_string(xs[i]);
    }
    return s + "]";
}

const char *appendProgram =
    "append([], L, L).\n"
    "append([H|T], L, [H|R]) :- append(T, L, R).\n";

const char *qsortProgram =
    "qsort([X|L], R, R0) :- partition(L, X, L1, L2),\n"
    "    qsort(L2, R1, R0), qsort(L1, R, [X|R1]).\n"
    "qsort([], R, R).\n"
    "partition([X|L], Y, [X|L1], L2) :- X =< Y, !, "
    "partition(L, Y, L1, L2).\n"
    "partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).\n"
    "partition([], _, [], []).\n";

} // namespace

// ------------------------------------------------- inference-count laws

class AppendLength : public ::testing::TestWithParam<int>
{
};

TEST_P(AppendLength, InferenceCountIsExactlyNPlusOne)
{
    int n = GetParam();
    std::vector<int> xs(n);
    for (int i = 0; i < n; ++i)
        xs[i] = i;
    KcmSystem system;
    system.consult(appendProgram);
    auto result =
        system.query("append(" + intList(xs) + ", [x], _)");
    ASSERT_TRUE(result.success);
    // One invocation per element plus the base case.
    EXPECT_EQ(result.inferences, uint64_t(n) + 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AppendLength,
                         ::testing::Values(0, 1, 2, 5, 10, 25, 50, 100));

class NrevLength : public ::testing::TestWithParam<int>
{
};

TEST_P(NrevLength, InferenceCountMatchesClosedForm)
{
    int n = GetParam();
    std::vector<int> xs(n);
    for (int i = 0; i < n; ++i)
        xs[i] = i;
    KcmSystem system;
    system.consult(
        "nrev([], []).\n"
        "nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).\n" +
        std::string(appendProgram));
    auto result = system.query("nrev(" + intList(xs) + ", _)");
    ASSERT_TRUE(result.success);
    // nrev calls: n+1; append inferences: sum_{k=1..n} k = n(n+1)/2.
    EXPECT_EQ(result.inferences, uint64_t(n + 1 + n * (n + 1) / 2));
}

INSTANTIATE_TEST_SUITE_P(Sweep, NrevLength,
                         ::testing::Values(0, 1, 2, 5, 10, 30));

// ------------------------------------------------ sorting vs std::sort

class QsortRandom : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(QsortRandom, AgreesWithStdSort)
{
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<int> value(0, 99);
    std::uniform_int_distribution<int> length(0, 40);

    int n = length(rng);
    std::vector<int> xs(n);
    for (auto &x : xs)
        x = value(rng);

    KcmSystem system;
    system.consult(qsortProgram);
    auto result = system.query("qsort(" + intList(xs) + ", R, [])");
    ASSERT_TRUE(result.success);

    std::vector<int> expected = xs;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(result.solutions[0].toString(),
              "R = " + intList(expected));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QsortRandom,
                         ::testing::Range(1u, 13u));

// -------------------------------------------- enumeration completeness

TEST(Properties, AppendEnumeratesAllSplits)
{
    for (int n = 0; n <= 8; ++n) {
        std::vector<int> xs(n);
        for (int i = 0; i < n; ++i)
            xs[i] = i;
        KcmOptions options;
        options.maxSolutions = 100;
        KcmSystem system(options);
        system.consult(appendProgram);
        auto result =
            system.query("append(A, B, " + intList(xs) + ")");
        EXPECT_EQ(result.solutions.size(), size_t(n) + 1)
            << "splits of a list of length " << n;
    }
}

TEST(Properties, MemberEnumeratesEveryElement)
{
    KcmOptions options;
    options.maxSolutions = 100;
    KcmSystem system(options);
    system.consult(
        "member(X, [X|_]).\n"
        "member(X, [_|T]) :- member(X, T).\n");
    auto result = system.query("member(X, [a,b,c,d,e])");
    ASSERT_EQ(result.solutions.size(), 5u);
    EXPECT_EQ(result.solutions[0].toString(), "X = a");
    EXPECT_EQ(result.solutions[4].toString(), "X = e");
}

// ----------------------------------------- failure leaves no residue

TEST(Properties, FailureDrivenLoopRestoresState)
{
    // After (G, fail ; true) every binding made by G must be undone:
    // running the loop twice gives identical measurements.
    const char *program =
        "p(1). p(2). p(3). p(4).\n"
        "loop :- p(_), fail.\n"
        "loop.\n";
    KcmSystem system;
    system.consult(program);
    auto first = system.query("loop, loop");
    ASSERT_TRUE(first.success);

    // And the trail is fully unwound: the machine's trail pushes are
    // matched by unbinds (checked indirectly: a fresh identical query
    // returns the same cycle count — full determinism).
    KcmSystem system2;
    system2.consult(program);
    auto second = system2.query("loop, loop");
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.inferences, second.inferences);
}

TEST(Properties, SimulationIsDeterministic)
{
    const char *program =
        "qsort([X|L], R, R0) :- partition(L, X, L1, L2),\n"
        "    qsort(L2, R1, R0), qsort(L1, R, [X|R1]).\n"
        "qsort([], R, R).\n"
        "partition([X|L], Y, [X|L1], L2) :- X =< Y, !, "
        "partition(L, Y, L1, L2).\n"
        "partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).\n"
        "partition([], _, [], []).\n";
    uint64_t cycles[3];
    for (int i = 0; i < 3; ++i) {
        KcmSystem system;
        system.consult(program);
        auto result = system.query("qsort([3,1,4,1,5,9,2,6], R, [])");
        ASSERT_TRUE(result.success);
        cycles[i] = result.cycles;
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(cycles[1], cycles[2]);
}

// ------------------------------------------------ cycle-model sanity

TEST(Properties, CyclesScaleLinearlyWithAppendLength)
{
    // Steady-state concat is a constant-cycle loop: marginal cost per
    // element must be flat (the Table 4 "basic inferencing step").
    uint64_t prev_cycles = 0;
    int prev_n = 0;
    double first_marginal = 0;
    for (int n : {50, 100, 150}) {
        std::vector<int> xs(n);
        for (int i = 0; i < n; ++i)
            xs[i] = i;
        KcmSystem system;
        system.consult(appendProgram);
        auto result = system.query("append(" + intList(xs) + ", [], _)");
        ASSERT_TRUE(result.success);
        if (prev_n) {
            double marginal = double(result.cycles - prev_cycles) /
                              double(n - prev_n);
            if (first_marginal == 0)
                first_marginal = marginal;
            EXPECT_NEAR(marginal, first_marginal, first_marginal * 0.25);
        }
        prev_cycles = result.cycles;
        prev_n = n;
    }
}

TEST(Properties, ShallowNeverSlowerOnSuiteKernels)
{
    // Shallow backtracking should never cost cycles on these kernels.
    struct Kernel
    {
        const char *program;
        const char *goal;
    };
    const Kernel kernels[] = {
        {"f(0, a) :- !.\nf(N, X) :- M is N - 1, f(M, X).\n",
         "f(200, X)"},
        {"m(X, [X|_]).\nm(X, [_|T]) :- m(X, T).\n",
         "m(z, [a,b,c,d,e,f,g,h,i,j,k,l,z])"},
    };
    for (const auto &kernel : kernels) {
        KcmOptions shallow_options;
        KcmSystem shallow_system(shallow_options);
        shallow_system.consult(kernel.program);
        auto shallow = shallow_system.query(kernel.goal);

        KcmOptions wam_options;
        wam_options.machine.shallowBacktracking = false;
        KcmSystem wam_system(wam_options);
        wam_system.consult(kernel.program);
        auto standard = wam_system.query(kernel.goal);

        EXPECT_EQ(shallow.success, standard.success);
        EXPECT_LE(shallow.cycles, standard.cycles) << kernel.goal;
    }
}

// ------------------------------------------- zone safety under stress

TEST(Properties, ZoneCheckSurvivesHeavyBacktracking)
{
    // The zone checker watches every data access; a long
    // backtracking-heavy run must not raise any trap.
    KcmOptions options;
    options.maxSolutions = 100;
    KcmSystem system(options);
    system.consult(
        "perm([], []).\n"
        "perm(L, [X|P]) :- sel(X, L, R), perm(R, P).\n"
        "sel(X, [X|T], T).\n"
        "sel(X, [H|T], [H|R]) :- sel(X, T, R).\n");
    auto result = system.query("perm([1,2,3,4], P)");
    EXPECT_EQ(result.solutions.size(), 24u); // 4! permutations
    EXPECT_GT(
        system.machine().mem().zoneChecker().checksPerformed.value(),
        0u);
}
