/**
 * @file
 * Durable-database tests: ClauseStore transactions (exact in-place
 * rollback, op-batch codec round-trips), the write-ahead journal
 * (append / recover / torn-tail truncation / corrupt-record
 * classification / snapshot compaction / sync modes), and the
 * service-layer commit-before-ack contract including a SIGTERM-style
 * drain arriving mid-mutation. bench/db_crash covers the same
 * invariants against a real daemon under kill -9; these pin them down
 * deterministically in the tier-1 suite.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "base/logging.hh"
#include "db/clause_store.hh"
#include "db/journal.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "service/session.hh"

using namespace kcm;

namespace
{

Functor
fn(const std::string &name, uint32_t arity)
{
    return {AtomTable::instance().intern(name), arity};
}

TermRef
fact2(const std::string &pred, int64_t a, int64_t b)
{
    return Term::makeStruct(pred,
                            {Term::makeInt(a), Term::makeInt(b)});
}

std::vector<uint8_t>
storeBytes(const db::ClauseStore &s)
{
    std::vector<uint8_t> bytes;
    s.saveTo(bytes);
    return bytes;
}

/** Fresh scratch directory under TMPDIR; removed by the caller (or
 *  left for inspection on failure — names are unique). */
std::string
scratchDir()
{
    std::string tmpl = "/tmp/kcm_journal_test_XXXXXX";
    char *buf = tmpl.data();
    if (!mkdtemp(buf))
        fatal("mkdtemp: cannot create scratch directory");
    return tmpl;
}

void
removeTree(const std::string &dir)
{
    std::string cmd = "rm -rf '" + dir + "'";
    if (system(cmd.c_str()) != 0)
        fprintf(stderr, "warning: could not remove %s\n", dir.c_str());
}

/** Total nodes scanned walking every candidate of (f, key). The
 *  skiplist shape (not just contents) must survive journal replay for
 *  this to match. */
uint64_t
walkScanned(const db::ClauseStore &s, const Functor &f,
            const db::ArgKey &key)
{
    uint64_t scanned = 0;
    db::ClauseStore::LookupResult r = s.first(f, key, s.generation());
    while (r.clause) {
        scanned += r.scanned;
        r = s.next(f, key, s.generation(), r.clause->seq);
    }
    return scanned + r.scanned;
}

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    FILE *f = fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open ", path);
    std::vector<uint8_t> bytes;
    uint8_t buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof buf, f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    fclose(f);
    return bytes;
}

void
writeFileBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    FILE *f = fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open ", path);
    fwrite(bytes.data(), 1, bytes.size(), f);
    fclose(f);
}

} // namespace

// ------------------------------------------------------------------ //
// Transactions
// ------------------------------------------------------------------ //

TEST(ClauseStoreTxn, RollbackRestoresEveryByteAndCounter)
{
    db::ClauseStore s;
    s.assertClause(fn("f", 2), fact2("f", 1, 10), nullptr, false);
    s.assertClause(fn("f", 2), fact2("f", 2, 20), nullptr, false);
    s.assertClause(fn("g", 1),
                   Term::makeStruct("g", {Term::makeInt(7)}), nullptr,
                   false);

    const std::vector<uint8_t> before = storeBytes(s);
    const uint64_t gen = s.generation();
    const uint64_t updates = s.updateCount();

    s.beginTxn();
    // Every mutation kind, including interning a brand-new predicate
    // and retracting a pre-transaction clause.
    s.assertClause(fn("f", 2), fact2("f", 3, 30), nullptr, false);
    s.assertClause(fn("f", 2), fact2("f", 0, 0), nullptr, true);
    const db::StoredClause &h = s.assertClause(
        fn("h", 1), Term::makeStruct("h", {Term::makeInt(1)}), nullptr,
        false);
    (void)h;
    db::ClauseStore::LookupResult r =
        s.first(fn("f", 2), db::ArgKey::forTerm(Term::makeInt(1)),
                s.generation());
    ASSERT_NE(r.clause, nullptr);
    s.eraseClause(fn("f", 2), r.clause->seq);
    ASSERT_EQ(s.txnOps().size(), 4u);
    s.rollbackTxn();

    EXPECT_EQ(storeBytes(s), before);
    EXPECT_EQ(s.generation(), gen);
    EXPECT_EQ(s.updateCount(), updates);
    EXPECT_FALSE(s.isKnown(fn("h", 1)));
    EXPECT_FALSE(s.inTxn());
}

TEST(ClauseStoreTxn, CommitReturnsOpsAndKeepsMutations)
{
    db::ClauseStore s;
    s.beginTxn();
    s.assertClause(fn("f", 2), fact2("f", 1, 10), nullptr, false);
    s.assertClause(fn("f", 2), fact2("f", 2, 20), nullptr, false);
    std::vector<db::TxnOp> ops = s.commitTxn();
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].kind, db::TxnOp::Kind::AssertZ);
    EXPECT_FALSE(s.inTxn());
    EXPECT_EQ(s.liveClauseCount(fn("f", 2)), 2u);
}

TEST(ClauseStoreTxn, OpBatchCodecRoundTripsAndReplaysBitIdentical)
{
    db::ClauseStore a;
    a.beginTxn();
    a.assertClause(fn("f", 2), fact2("f", 1, 10), nullptr, false);
    a.assertClause(fn("f", 2), fact2("f", 2, 20), nullptr, false);
    a.assertClause(fn("f", 2), fact2("f", 0, 0), nullptr, true);
    // A rule with a body and an atom-only fact, to cover the term
    // codec's hasBody and zero-arity paths.
    a.assertClause(
        fn("r", 1), Term::makeStruct("r", {Term::makeVar("X")}),
        Term::makeStruct("f", {Term::makeVar("X"), Term::makeVar("_")}),
        false);
    a.assertClause(fn("flag", 0), Term::makeAtom("flag"), nullptr,
                   false);
    db::ClauseStore::LookupResult r =
        a.first(fn("f", 2), db::ArgKey::forTerm(Term::makeInt(2)),
                a.generation());
    ASSERT_NE(r.clause, nullptr);
    a.eraseClause(fn("f", 2), r.clause->seq);
    std::vector<db::TxnOp> ops = a.commitTxn();

    std::vector<uint8_t> payload;
    db::ClauseStore::encodeOps(ops, payload);
    std::vector<db::TxnOp> decoded =
        db::ClauseStore::decodeOps(payload.data(), payload.size());
    ASSERT_EQ(decoded.size(), ops.size());

    db::ClauseStore b;
    for (const db::TxnOp &op : decoded)
        b.applyOp(op);
    EXPECT_EQ(storeBytes(b), storeBytes(a));
    EXPECT_EQ(b.generation(), a.generation());

    // Truncated and garbage payloads must throw, never misparse.
    EXPECT_THROW(db::ClauseStore::decodeOps(payload.data(),
                                            payload.size() - 1),
                 FatalError);
    std::vector<uint8_t> junk(16, 0xEE);
    EXPECT_THROW(db::ClauseStore::decodeOps(junk.data(), junk.size()),
                 FatalError);
}

TEST(ClauseStoreTxn, ReplayDivergenceIsFatalNotSilent)
{
    db::ClauseStore s;
    db::TxnOp op;
    op.kind = db::TxnOp::Kind::Erase;
    op.f = fn("nosuch", 1);
    op.seq = 42;
    EXPECT_THROW(s.applyOp(op), FatalError);
}

// ------------------------------------------------------------------ //
// Journal files
// ------------------------------------------------------------------ //

namespace
{

/** Run one transaction against an open journal + store (the service
 *  layer's commit sequence, without the service layer). */
template <typename Mutate>
uint64_t
journaledTxn(db::Journal &j, db::ClauseStore &s, Mutate &&mutate)
{
    s.beginTxn();
    mutate(s);
    uint64_t id = j.commit(s.txnOps());
    s.commitTxn();
    return id;
}

} // namespace

TEST(Journal, FilePathAcceptsDirectoryAndFile)
{
    std::string dir = scratchDir();
    EXPECT_EQ(db::Journal::journalFilePath(dir),
              dir + "/journal.kcmj");
    EXPECT_EQ(db::Journal::journalFilePath(dir + "/x.kcmj"),
              dir + "/x.kcmj");
    removeTree(dir);
}

TEST(Journal, ReopenRebuildsBitIdenticalStoreAndSkiplists)
{
    std::string dir = scratchDir();
    db::ClauseStore original;
    {
        db::Journal j;
        db::JournalScan scan;
        j.open(dir, {}, original, scan);
        EXPECT_TRUE(scan.clean());
        EXPECT_EQ(scan.records, 0u);

        journaledTxn(j, original, [](db::ClauseStore &s) {
            for (int64_t i = 0; i < 40; ++i)
                s.assertClause(fn("f", 2), fact2("f", i, i * 2),
                               nullptr, false);
        });
        journaledTxn(j, original, [](db::ClauseStore &s) {
            s.assertClause(fn("f", 2), fact2("f", -1, -1), nullptr,
                           true);
            db::ClauseStore::LookupResult r = s.first(
                fn("f", 2), db::ArgKey::forTerm(Term::makeInt(7)),
                s.generation());
            ASSERT_NE(r.clause, nullptr);
            s.eraseClause(fn("f", 2), r.clause->seq);
        });
        j.close();
    }

    db::ClauseStore recovered;
    db::JournalScan scan = db::Journal::scanFile(
        db::Journal::journalFilePath(dir), &recovered);
    EXPECT_TRUE(scan.clean());
    EXPECT_EQ(scan.commits, 2u);
    EXPECT_EQ(scan.lastCommitId, 2u);
    EXPECT_EQ(scan.ops, 42u);
    EXPECT_EQ(storeBytes(recovered), storeBytes(original));

    // Same skiplist shape, not just the same clauses: identical
    // scanned counts on a keyed walk and on the unindexed master walk.
    db::ArgKey keyed = db::ArgKey::forTerm(Term::makeInt(13));
    db::ArgKey any = db::ArgKey::forTerm(Term::makeVar("_"));
    EXPECT_EQ(walkScanned(recovered, fn("f", 2), keyed),
              walkScanned(original, fn("f", 2), keyed));
    EXPECT_EQ(walkScanned(recovered, fn("f", 2), any),
              walkScanned(original, fn("f", 2), any));

    // A second open appends where the first left off.
    {
        db::ClauseStore store2;
        db::Journal j;
        db::JournalScan scan2;
        j.open(dir, {}, store2, scan2);
        EXPECT_TRUE(scan2.clean());
        EXPECT_EQ(j.nextCommitId(), 3u);
        EXPECT_EQ(storeBytes(store2), storeBytes(original));
        j.close();
    }
    removeTree(dir);
}

TEST(Journal, SecondWriterIsRefusedWhileFirstHoldsTheLock)
{
    std::string dir = scratchDir();
    db::ClauseStore store;
    db::Journal j;
    db::JournalScan scan;
    j.open(dir, {}, store, scan);

    // flock conflicts across open file descriptions, so a second open
    // in this process exercises exactly what a second daemon would hit.
    db::ClauseStore store2;
    db::Journal j2;
    db::JournalScan scan2;
    try {
        j2.open(dir, {}, store2, scan2);
        FAIL() << "second writer acquired the journal lock";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("locked by another"),
                  std::string::npos)
            << e.what();
    }

    // Releasing the first writer frees the journal for the next.
    j.close();
    db::Journal j3;
    db::JournalScan scan3;
    db::ClauseStore store3;
    j3.open(dir, {}, store3, scan3);
    EXPECT_TRUE(scan3.clean());
    j3.close();
    removeTree(dir);
}

TEST(Journal, TornTailIsClassifiedTruncatedAndPrefixSurvives)
{
    std::string dir = scratchDir();
    const std::string path = db::Journal::journalFilePath(dir);
    db::ClauseStore store;
    {
        db::Journal j;
        db::JournalScan scan;
        j.open(dir, {}, store, scan);
        journaledTxn(j, store, [](db::ClauseStore &s) {
            s.assertClause(fn("f", 2), fact2("f", 1, 1), nullptr,
                           false);
        });
        journaledTxn(j, store, [](db::ClauseStore &s) {
            s.assertClause(fn("f", 2), fact2("f", 2, 2), nullptr,
                           false);
        });
        j.close();
    }
    const std::vector<uint8_t> intact = readFileBytes(path);

    // A crash mid-append leaves a partial record: a header that
    // promises more payload than the file holds.
    std::vector<uint8_t> torn = intact;
    torn.push_back(1); // record type byte of a half-written header
    for (int i = 0; i < 9; ++i)
        torn.push_back(0xAB);
    writeFileBytes(path, torn);

    db::ClauseStore recovered;
    db::JournalScan scan = db::Journal::scanFile(path, &recovered);
    EXPECT_TRUE(scan.torn);
    EXPECT_FALSE(scan.corrupt);
    EXPECT_STREQ(scan.classification(), "torn_tail");
    EXPECT_EQ(scan.goodBytes, intact.size());
    EXPECT_EQ(scan.commits, 2u);
    EXPECT_EQ(storeBytes(recovered), storeBytes(store));

    // open() truncates the torn tail and the journal keeps working.
    {
        db::ClauseStore store2;
        db::Journal j;
        db::JournalScan scan2;
        j.open(dir, {}, store2, scan2);
        EXPECT_TRUE(scan2.torn);
        EXPECT_EQ(storeBytes(store2), storeBytes(store));
        journaledTxn(j, store2, [](db::ClauseStore &s) {
            s.assertClause(fn("f", 2), fact2("f", 3, 3), nullptr,
                           false);
        });
        j.close();
    }
    db::ClauseStore after;
    db::JournalScan rescan = db::Journal::scanFile(path, &after);
    EXPECT_TRUE(rescan.clean());
    EXPECT_EQ(rescan.commits, 3u);
    removeTree(dir);
}

TEST(Journal, CorruptRecordIsReportedAndSuffixDropped)
{
    std::string dir = scratchDir();
    const std::string path = db::Journal::journalFilePath(dir);
    db::ClauseStore store;
    std::vector<uint8_t> after_first;
    {
        db::Journal j;
        db::JournalScan scan;
        j.open(dir, {}, store, scan);
        journaledTxn(j, store, [](db::ClauseStore &s) {
            s.assertClause(fn("f", 2), fact2("f", 1, 1), nullptr,
                           false);
        });
        after_first = storeBytes(store);
        journaledTxn(j, store, [](db::ClauseStore &s) {
            s.assertClause(fn("f", 2), fact2("f", 2, 2), nullptr,
                           false);
        });
        journaledTxn(j, store, [](db::ClauseStore &s) {
            s.assertClause(fn("f", 2), fact2("f", 3, 3), nullptr,
                           false);
        });
        j.close();
    }

    db::JournalScan intact = db::Journal::scanFile(path, nullptr);
    ASSERT_EQ(intact.recordOffsets.size(), 3u);

    // Flip one payload byte of the middle record: checksum failure
    // mid-file — bit rot, not a crash signature.
    std::vector<uint8_t> bytes = readFileBytes(path);
    bytes[intact.recordOffsets[1] + 24] ^= 0x40;
    writeFileBytes(path, bytes);

    db::ClauseStore recovered;
    db::JournalScan scan = db::Journal::scanFile(path, &recovered);
    EXPECT_TRUE(scan.corrupt);
    EXPECT_STREQ(scan.classification(), "corrupt_record");
    EXPECT_FALSE(scan.reason.empty());
    EXPECT_EQ(scan.goodBytes, intact.recordOffsets[1]);
    EXPECT_EQ(scan.commits, 1u);
    // Only the surviving prefix replays; the suspect suffix is never
    // applied, even though the third record's checksum is fine.
    EXPECT_EQ(storeBytes(recovered), after_first);
    removeTree(dir);
}

TEST(Journal, SnapshotRecordsBoundReplayAndCompactionPreservesState)
{
    std::string dir = scratchDir();
    const std::string path = db::Journal::journalFilePath(dir);
    std::vector<uint8_t> expect;
    {
        db::JournalOptions opts;
        opts.snapshotEvery = 2;
        db::JournaledStore js(dir, opts, db::DynDbConfig{});
        std::lock_guard<std::mutex> lock(js.mutex());
        db::ClauseStore &s = js.store();
        for (int64_t i = 0; i < 5; ++i) {
            s.beginTxn();
            s.assertClause(fn("f", 2), fact2("f", i, i), nullptr,
                           false);
            js.commit(s.txnOps());
            s.commitTxn();
        }
        EXPECT_EQ(js.commitsWritten(), 5u);
        EXPECT_EQ(js.snapshotsWritten(), 2u);
        expect = storeBytes(s);
    }

    db::ClauseStore recovered;
    db::JournalScan scan = db::Journal::scanFile(path, &recovered);
    EXPECT_TRUE(scan.clean());
    EXPECT_EQ(scan.snapshots, 2u);
    EXPECT_EQ(scan.lastCommitId, 5u);
    EXPECT_EQ(storeBytes(recovered), expect);

    // Compaction: one snapshot record, same store, same commit id.
    db::JournalScan before =
        db::Journal::compactFile(path, db::DynDbConfig{});
    EXPECT_TRUE(before.clean());
    db::ClauseStore compacted;
    db::JournalScan after = db::Journal::scanFile(path, &compacted);
    EXPECT_TRUE(after.clean());
    EXPECT_EQ(after.records, 1u);
    EXPECT_EQ(after.snapshots, 1u);
    EXPECT_EQ(after.lastCommitId, 5u);
    EXPECT_EQ(storeBytes(compacted), expect);

    // The journal appends after the compacted snapshot seamlessly.
    {
        db::ClauseStore store2;
        db::Journal j;
        db::JournalScan scan2;
        j.open(dir, {}, store2, scan2);
        EXPECT_EQ(j.nextCommitId(), 6u);
        j.close();
    }
    removeTree(dir);
}

TEST(Journal, SyncModesProduceByteIdenticalJournals)
{
    auto write_with = [](db::JournalSync sync) {
        std::string dir = scratchDir();
        db::JournalOptions opts;
        opts.sync = sync;
        db::ClauseStore store;
        db::Journal j;
        db::JournalScan scan;
        j.open(dir, opts, store, scan);
        for (int64_t i = 0; i < 3; ++i) {
            journaledTxn(j, store, [&](db::ClauseStore &s) {
                s.assertClause(fn("f", 2), fact2("f", i, i), nullptr,
                               false);
            });
        }
        j.close();
        std::vector<uint8_t> bytes =
            readFileBytes(db::Journal::journalFilePath(dir));
        removeTree(dir);
        return bytes;
    };
    std::vector<uint8_t> always = write_with(db::JournalSync::Always);
    EXPECT_EQ(write_with(db::JournalSync::Group), always);
    EXPECT_EQ(write_with(db::JournalSync::None), always);
}

// ------------------------------------------------------------------ //
// Service layer: commit-before-ack and drain-mid-mutation
// ------------------------------------------------------------------ //

TEST(DurableService, DrainMidMutationNeverAcksUnjournaledOps)
{
    std::string dir = scratchDir();
    service::ServerOptions options;
    options.consultStdlib = false;
    options.workers = 1;
    options.dbJournalDir = dir;
    options.drainGraceMs = 100; // interrupt stragglers fast
    service::clearServiceInterrupt();

    uint64_t acked_commits = 0;
    std::vector<uint8_t> acked_bytes;
    {
        service::Server server(options);
        server.start();
        service::Client client;
        ASSERT_TRUE(
            client.connect("127.0.0.1", server.port(), 5'000))
            << client.error();

        const std::string program =
            ":- dynamic(f/2).\n"
            "grow(N, N).\n"
            "grow(I, N) :- I < N, assertz(f(I, I)), I1 is I + 1, "
            "grow(I1, N).\n"
            "spin(0).\n"
            "spin(N) :- M is N - 1, spin(M).\n"
            "burst(N) :- grow(0, N).\n"
            "slow(N) :- grow(0, N), spin(50000000).\n";

        // One completed mutating query: its reply must carry the
        // journal ack.
        service::ClientReply done =
            client.query("ok", program, "burst(10)", 1, 0, 30'000);
        ASSERT_EQ(done.status(), "completed");
        EXPECT_EQ(done.num("db_ops"), 10);
        acked_commits = uint64_t(done.num("db_commit"));
        EXPECT_GT(acked_commits, 0u);

        // A mutating query that asserts and then spins: the drain's
        // grace expires mid-spin, the session aborts at a slice
        // boundary, and the whole transaction rolls back — the reply
        // is "interrupted" with no db_commit ack.
        ASSERT_EQ(client.sendLine(
                      "{\"op\": \"query\", \"id\": \"mid\", "
                      "\"program\": " +
                      service::jsonQuote(program) +
                      ", \"goal\": \"slow(25)\"}"),
                  service::IoStatus::Ok);
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        server.requestDrain();
        server.waitDrained();

        service::ClientReply mid = client.readReply(10'000);
        ASSERT_EQ(mid.io, service::IoStatus::Ok);
        EXPECT_EQ(mid.status(), "failed");
        EXPECT_EQ(mid.str("error"), "interrupted");
        EXPECT_EQ(mid.num("db_commit"), 0);

        const db::JournaledStore *db = server.durableDb();
        ASSERT_NE(db, nullptr);
        EXPECT_EQ(db->commitsWritten(), 1u);
        {
            // The in-memory store agrees with the acked state: the
            // rolled-back burst left nothing half-applied.
            db::JournaledStore *mdb =
                const_cast<db::JournaledStore *>(db);
            std::lock_guard<std::mutex> lock(mdb->mutex());
            EXPECT_EQ(mdb->store().liveClauseCount(fn("f", 2)), 10u);
            acked_bytes = storeBytes(mdb->store());
        }
    }
    service::clearServiceInterrupt();

    // The journal tail agrees with the replies: exactly the acked
    // commit is on disk, and replay reproduces the acked store.
    db::ClauseStore recovered;
    db::JournalScan scan = db::Journal::scanFile(
        db::Journal::journalFilePath(dir), &recovered);
    EXPECT_TRUE(scan.clean());
    EXPECT_EQ(scan.commits, acked_commits);
    EXPECT_EQ(scan.ops, 10u);
    EXPECT_EQ(storeBytes(recovered), acked_bytes);
    removeTree(dir);
}

TEST(DurableService, JournalIoAccountingMatchesStatsOp)
{
    std::string dir = scratchDir();
    service::ServerOptions options;
    options.consultStdlib = false;
    options.workers = 2;
    options.dbJournalDir = dir;
    service::clearServiceInterrupt();
    {
        service::Server server(options);
        server.start();
        service::Client client;
        ASSERT_TRUE(
            client.connect("127.0.0.1", server.port(), 5'000))
            << client.error();

        const std::string program = ":- dynamic(f/1).\n";
        for (int i = 0; i < 3; ++i) {
            service::ClientReply r = client.query(
                cat("q", i), program,
                cat("assertz(f(", i, "))"), 1, 0, 30'000);
            ASSERT_EQ(r.status(), "completed");
            EXPECT_EQ(r.num("db_commit"), i + 1);
        }
        // A read-only query journals nothing and carries no ack.
        service::ClientReply ro =
            client.query("ro", program, "f(X)", 0, 0, 30'000);
        ASSERT_EQ(ro.status(), "completed");
        EXPECT_EQ(ro.num("db_commit"), 0);

        service::ClientReply stats = client.stats();
        ASSERT_EQ(stats.status(), "ok");
        EXPECT_EQ(stats.num("journal_commits"), 3);
        EXPECT_EQ(stats.num("journal_ops"), 3);
        EXPECT_EQ(stats.num("db_commits"), 3);
        EXPECT_EQ(stats.str("journal_recovery"), "clean");

        server.requestDrain();
        server.waitDrained();
    }
    service::clearServiceInterrupt();

    db::JournalScan scan = db::Journal::scanFile(
        db::Journal::journalFilePath(dir), nullptr);
    EXPECT_TRUE(scan.clean());
    EXPECT_EQ(scan.commits, 3u);
    removeTree(dir);
}
