/**
 * @file
 * Term representation and writer tests.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "prolog/parser.hh"
#include "prolog/term.hh"
#include "prolog/writer.hh"

using namespace kcm;

TEST(Term, MakersAndAccessors)
{
    TermRef atom = Term::makeAtom("foo");
    EXPECT_TRUE(atom->isAtom());
    EXPECT_EQ(atomText(atom->atom()), "foo");

    TermRef number = Term::makeInt(-5);
    EXPECT_TRUE(number->isInt());
    EXPECT_EQ(number->intValue(), -5);

    TermRef f = Term::makeFloat(2.5);
    EXPECT_TRUE(f->isFloat());
    EXPECT_DOUBLE_EQ(f->floatValue(), 2.5);

    TermRef s = Term::makeStruct("pair", {atom, number});
    EXPECT_TRUE(s->isStruct());
    EXPECT_EQ(s->arity(), 2u);
    EXPECT_EQ(s->arg(0).get(), atom.get());
    EXPECT_EQ(s->functor().arity, 2u);
}

TEST(Term, ZeroArityStructBecomesAtom)
{
    TermRef t = Term::makeStruct("alone", {});
    EXPECT_TRUE(t->isAtom());
}

TEST(Term, ListBuilders)
{
    TermRef list =
        Term::makeList({Term::makeInt(1), Term::makeInt(2)});
    EXPECT_TRUE(list->isCons());
    EXPECT_TRUE(list->arg(1)->isCons());
    EXPECT_TRUE(list->arg(1)->arg(1)->isNil());

    TermRef tail = Term::makeVar("T");
    TermRef partial = Term::makeList({Term::makeInt(1)}, tail);
    EXPECT_EQ(partial->arg(1).get(), tail.get());
}

TEST(Term, VarsAreIdentityDistinct)
{
    TermRef a = Term::makeVar("X");
    TermRef b = Term::makeVar("X");
    EXPECT_NE(a->varId(), b->varId());
    EXPECT_FALSE(Term::equal(a, b));
    EXPECT_TRUE(Term::equal(a, a));
}

TEST(Term, StructuralEquality)
{
    TermRef a = parseTermText("f(1, [a,b], g(x))");
    TermRef b = parseTermText("f(1, [a,b], g(x))");
    TermRef c = parseTermText("f(1, [a,c], g(x))");
    EXPECT_TRUE(Term::equal(a, b));
    EXPECT_FALSE(Term::equal(a, c));
}

TEST(Term, CollectVarsInOrder)
{
    TermRef t = parseTermText("f(X, g(Y, X), [Z|Y])");
    std::vector<TermRef> vars;
    collectVars(t, vars);
    ASSERT_EQ(vars.size(), 3u);
    EXPECT_EQ(vars[0]->varName(), "X");
    EXPECT_EQ(vars[1]->varName(), "Y");
    EXPECT_EQ(vars[2]->varName(), "Z");
    EXPECT_EQ(countVars(t), 3u);
}

TEST(Term, AccessorPanicsOnWrongKind)
{
    TermRef atom = Term::makeAtom("a");
    EXPECT_THROW(atom->intValue(), PanicError);
    EXPECT_THROW(atom->varName(), PanicError);
    TermRef i = Term::makeInt(1);
    EXPECT_THROW(i->functorName(), PanicError);
    TermRef s = parseTermText("f(a)");
    EXPECT_THROW(s->arg(5), PanicError);
}

TEST(Writer, Numbers)
{
    EXPECT_EQ(writeTerm(Term::makeInt(42)), "42");
    EXPECT_EQ(writeTerm(Term::makeInt(-7)), "-7");
    EXPECT_EQ(writeTerm(Term::makeFloat(2.0)), "2.0");
    EXPECT_EQ(writeTerm(Term::makeFloat(1.5)), "1.5");
}

TEST(Writer, ListForms)
{
    EXPECT_EQ(writeTerm(parseTermText("[1,2,3]")), "[1,2,3]");
    EXPECT_EQ(writeTerm(parseTermText("[]")), "[]");
    EXPECT_EQ(writeTerm(parseTermText("[[1],[2,[3]]]")),
              "[[1],[2,[3]]]");
}

TEST(Writer, OperatorPrecedenceParens)
{
    EXPECT_EQ(writeTerm(parseTermText("a + b * c")), "a + b * c");
    EXPECT_EQ(writeTerm(parseTermText("(a + b) * c")), "(a + b) * c");
    EXPECT_EQ(writeTerm(parseTermText("-(1 + 2)")), "- (1 + 2)");
    EXPECT_EQ(writeTerm(parseTermText("a - (b - c)")), "a - (b - c)");
    EXPECT_EQ(writeTerm(parseTermText("(a - b) - c")), "a - b - c");
}

TEST(Writer, CanonicalIgnoresOps)
{
    OperatorTable ops;
    WriteOptions options;
    options.ignoreOps = true;
    EXPECT_EQ(writeTerm(parseTermText("1 + 2"), ops, options), "+(1,2)");
}

TEST(Writer, MaxDepthTruncates)
{
    OperatorTable ops;
    WriteOptions options;
    options.maxDepth = 2;
    TermRef deep = parseTermText("f(g(h(k(x))))");
    std::string out = writeTerm(deep, ops, options);
    EXPECT_NE(out.find("..."), std::string::npos);
}

TEST(Writer, QuotingRules)
{
    EXPECT_EQ(writeTermQuoted(Term::makeAtom("needs quoting")),
              "'needs quoting'");
    EXPECT_EQ(writeTermQuoted(Term::makeAtom("noQuotes1")), "noQuotes1");
    EXPECT_EQ(writeTermQuoted(Term::makeAtom("it's")), "'it\\'s'");
    EXPECT_EQ(writeTermQuoted(Term::makeAtom("[]")), "[]");
}

TEST(Writer, CurlyAndPartialLists)
{
    EXPECT_EQ(writeTerm(parseTermText("{a, b}")), "{a,b}");
    std::string partial = writeTerm(parseTermText("[a|T]"));
    EXPECT_EQ(partial.substr(0, 3), "[a|");
    EXPECT_EQ(partial.back(), ']');
}

TEST(Writer, AlphaOperatorsGetSpaces)
{
    EXPECT_EQ(writeTerm(parseTermText("1 mod 2")), "1 mod 2");
    EXPECT_EQ(writeTerm(parseTermText("a is b")), "a is b");
}
