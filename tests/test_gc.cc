/**
 * @file
 * Garbage collector tests: the sliding mark-compact collection of the
 * global stack must be invisible to program semantics — across live
 * data, backtracking state, trail entries, and choice points.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

const char *nrevProgram =
    "nrev([], []).\n"
    "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n"
    "app([], L, L).\n"
    "app([H|T], L, [H|R]) :- app(T, L, R).\n"
    "list20([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20]).\n";

QueryResult
runWithGc(const std::string &program, const std::string &goal,
          uint64_t threshold, size_t max_solutions = 1,
          uint64_t *gc_runs = nullptr, uint64_t *reclaimed = nullptr)
{
    KcmOptions options;
    options.machine.gcThresholdWords = threshold;
    options.maxSolutions = max_solutions;
    KcmSystem system(options);
    if (!program.empty())
        system.consult(program);
    QueryResult result = system.query(goal);
    if (gc_runs)
        *gc_runs = system.machine().gcRuns.value();
    if (reclaimed)
        *reclaimed = system.machine().gcWordsReclaimed.value();
    return result;
}

} // namespace

TEST(Gc, NrevSurvivesAggressiveCollection)
{
    // nrev(20) makes ~500 heap cells of intermediate garbage; with a
    // 96-word threshold the collector runs many times mid-computation.
    uint64_t runs = 0;
    uint64_t reclaimed = 0;
    auto with_gc = runWithGc(nrevProgram, "list20(L), nrev(L, R)", 96, 1,
                             &runs, &reclaimed);
    auto without_gc = runWithGc(nrevProgram, "list20(L), nrev(L, R)", 0);

    ASSERT_TRUE(with_gc.success);
    EXPECT_GT(runs, 0u);
    EXPECT_GT(reclaimed, 0u);
    EXPECT_EQ(with_gc.solutions[0].toString(),
              without_gc.solutions[0].toString());
}

TEST(Gc, ReclaimsIntermediateGarbage)
{
    // Each nrev step's intermediate lists die immediately; most of the
    // heap is reclaimable.
    uint64_t runs = 0;
    uint64_t reclaimed = 0;
    runWithGc(nrevProgram, "list20(L), nrev(L, _)", 128, 1, &runs,
              &reclaimed);
    EXPECT_GT(reclaimed, 100u);
}

TEST(Gc, BacktrackingAfterCollection)
{
    // Collect between solutions: choice points, trail and saved
    // argument registers must all survive relocation.
    const char *program =
        "build(X, f(X, [X, X])).\n"
        "pick(1). pick(2). pick(3).\n"
        "gen(T) :- pick(X), build(X, T).\n";
    KcmOptions options;
    options.maxSolutions = 10;
    KcmSystem system(options);
    system.consult(program);

    // Drive solutions manually, collecting between each.
    CodeImage image = system.compileOnly("gen(T)");
    Machine machine(options.machine);
    machine.load(image);

    std::vector<std::string> answers;
    RunStatus status = machine.run();
    while (status == RunStatus::SolutionFound) {
        answers.push_back(machine.lastSolution().toString());
        machine.collectGarbage();
        status = machine.nextSolution();
    }
    ASSERT_EQ(answers.size(), 3u);
    EXPECT_EQ(answers[0], "T = f(1,[1,1])");
    EXPECT_EQ(answers[1], "T = f(2,[2,2])");
    EXPECT_EQ(answers[2], "T = f(3,[3,3])");
}

TEST(Gc, TrailTargetsSurvive)
{
    // A variable bound inside the first solution must unbind correctly
    // after a GC ran before the backtrack.
    const char *program =
        "p(a). p(b).\n"
        "q(X, g(X)) :- p(X).\n";
    KcmOptions options;
    KcmSystem system(options);
    system.consult(program);
    CodeImage image = system.compileOnly("q(X, S)");
    Machine machine(options.machine);
    machine.load(image);

    ASSERT_EQ(machine.run(), RunStatus::SolutionFound);
    EXPECT_EQ(machine.lastSolution().toString(), "X = a, S = g(a)");
    machine.collectGarbage();
    ASSERT_EQ(machine.nextSolution(), RunStatus::SolutionFound);
    EXPECT_EQ(machine.lastSolution().toString(), "X = b, S = g(b)");
}

TEST(Gc, HeapShrinksAfterCollection)
{
    KcmOptions options;
    KcmSystem system(options);
    system.consult(nrevProgram);
    CodeImage image = system.compileOnly("list20(L), nrev(L, _)");
    Machine machine(options.machine);
    machine.load(image);
    machine.run();

    Addr before = machine.heapWords();
    uint64_t freed = machine.collectGarbage();
    Addr after = machine.heapWords();
    EXPECT_EQ(before - after, freed);
    EXPECT_GT(freed, 0u);
}

TEST(Gc, CollectionOnEmptyHeapIsSafe)
{
    KcmOptions options;
    KcmSystem system(options);
    system.consult("p(a).");
    CodeImage image = system.compileOnly("p(a)");
    Machine machine(options.machine);
    machine.load(image);
    EXPECT_EQ(machine.collectGarbage(), 0u);
    EXPECT_EQ(machine.run(), RunStatus::SolutionFound);
}

TEST(Gc, ChargesSimulatedCycles)
{
    KcmOptions options;
    KcmSystem system(options);
    system.consult(nrevProgram);
    CodeImage image = system.compileOnly("list20(L), nrev(L, _)");
    Machine machine(options.machine);
    machine.load(image);
    machine.run();
    uint64_t before = machine.cycles();
    machine.collectGarbage();
    EXPECT_GT(machine.cycles(), before);
}

TEST(Gc, IdempotentWhenNothingDies)
{
    // Immediately repeated collections reclaim nothing the second
    // time and preserve the reachable term.
    KcmOptions options;
    KcmSystem system(options);
    system.consult("mk(f([1,2,3], g(x))).");
    CodeImage image = system.compileOnly("mk(T)");
    Machine machine(options.machine);
    machine.load(image);
    ASSERT_EQ(machine.run(), RunStatus::SolutionFound);
    machine.collectGarbage();
    uint64_t second = machine.collectGarbage();
    EXPECT_EQ(second, 0u);
}

TEST(Gc, SuiteKernelsAgreeUnderGcPressure)
{
    struct Kernel
    {
        const char *program;
        const char *goal;
    };
    const Kernel kernels[] = {
        {nrevProgram, "list20(L), nrev(L, R)"},
        {"qsort([X|L], R, R0) :- partition(L, X, L1, L2),\n"
         "    qsort(L2, R1, R0), qsort(L1, R, [X|R1]).\n"
         "qsort([], R, R).\n"
         "partition([X|L], Y, [X|L1], L2) :- X =< Y, !, "
         "partition(L, Y, L1, L2).\n"
         "partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).\n"
         "partition([], _, [], []).\n",
         "qsort([9,3,7,1,8,2,6,4,5], R, [])"},
    };
    for (const auto &kernel : kernels) {
        auto pressured = runWithGc(kernel.program, kernel.goal, 64);
        auto plain = runWithGc(kernel.program, kernel.goal, 0);
        ASSERT_EQ(pressured.success, plain.success) << kernel.goal;
        EXPECT_EQ(pressured.solutions[0].toString(),
                  plain.solutions[0].toString())
            << kernel.goal;
    }
}
