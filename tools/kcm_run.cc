/**
 * @file
 * kcm_run — command-line driver for the KCM system.
 *
 * Usage:
 *   kcm_run [options] [file.pl ...] -q 'goal'
 *
 * Options:
 *   -q GOAL        query to run (required)
 *   -n N           collect up to N solutions (default 1; 0 = all)
 *   -e TEXT        consult program text given inline
 *   --stats        dump machine statistics after the run
 *   --profile      print the macrocode/Prolog-level monitor report
 *   --disasm       print the disassembled code image and exit
 *   --save FILE    save the compiled image and exit
 *   --load FILE    run a previously saved image (no sources needed)
 *   --no-shallow   run in standard-WAM mode (immediate choice points)
 *   --generic      generic arithmetic (no native integer mode)
 *   --max-cycles N abort after N simulated cycles
 *   --fast         predecoded threaded execution core (the default)
 *   --oracle       decode-per-step execution core (the differential
 *                  reference; simulated results are identical)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/logging.hh"
#include "compiler/image_io.hh"
#include "isa/disasm.hh"
#include "kcm/kcm.hh"

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        kcm::fatal("cannot open ", path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

[[noreturn]] void
usage()
{
    fprintf(stderr,
            "usage: kcm_run [options] [file.pl ...] -q 'goal'\n"
            "  -q GOAL   -n N   -e TEXT   --stats   --profile\n"
            "  --disasm  --no-shallow  --generic  --max-cycles N\n"
            "  --fast    --oracle\n");
    exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    kcm::KcmOptions options;
    std::string query;
    bool want_stats = false;
    bool want_profile = false;
    bool want_disasm = false;
    std::string save_path;
    std::string load_path;
    std::vector<std::string> sources;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "-q") {
            query = next();
        } else if (arg == "-n") {
            long n = atol(next().c_str());
            options.maxSolutions = n <= 0 ? SIZE_MAX : size_t(n);
        } else if (arg == "-e") {
            sources.push_back(next());
        } else if (arg == "--stats") {
            want_stats = true;
        } else if (arg == "--profile") {
            want_profile = true;
            options.machine.profile = true;
        } else if (arg == "--disasm") {
            want_disasm = true;
        } else if (arg == "--save") {
            save_path = next();
        } else if (arg == "--load") {
            load_path = next();
        } else if (arg == "--no-shallow") {
            options.machine.shallowBacktracking = false;
        } else if (arg == "--generic") {
            options.compiler.integerArithmetic = false;
        } else if (arg == "--max-cycles") {
            options.machine.maxCycles = strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--fast") {
            options.machine.fastDispatch = true;
        } else if (arg == "--oracle") {
            options.machine.fastDispatch = false;
        } else if (arg == "-h" || arg == "--help") {
            usage();
        } else if (!arg.empty() && arg[0] == '-') {
            fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
        } else {
            sources.push_back(readFile(arg));
        }
    }
    if (query.empty() && load_path.empty())
        usage();

    options.machine.captureOutput = false; // stream I/O to stdout

    try {
        if (!load_path.empty()) {
            // Run a downloaded image directly on the machine.
            kcm::CodeImage image = kcm::loadImageFile(load_path);
            kcm::Machine machine(options.machine);
            machine.load(image);
            kcm::RunStatus status = machine.run();
            size_t shown = 0;
            while (status == kcm::RunStatus::SolutionFound &&
                   shown < options.maxSolutions) {
                printf("%s ;\n",
                       machine.lastSolution().toString().c_str());
                ++shown;
                if (shown >= options.maxSolutions)
                    break;
                status = machine.nextSolution();
            }
            printf("%s.\n", shown ? "yes" : "no");
            fprintf(stderr, "[%llu cycles = %.3f ms simulated]\n",
                    (unsigned long long)machine.cycles(),
                    machine.seconds() * 1e3);
            return shown ? 0 : 1;
        }

        kcm::KcmSystem system(options);
        for (const auto &source : sources)
            system.consult(source);

        if (!save_path.empty()) {
            kcm::saveImageFile(system.compileOnly(query), save_path);
            fprintf(stderr, "image saved to %s\n", save_path.c_str());
            return 0;
        }

        if (want_disasm) {
            kcm::CodeImage image = system.compileOnly(query);
            printf("%s", kcm::disasmRange(image.words, 0,
                                          image.words.size())
                             .c_str());
            return 0;
        }

        kcm::QueryResult result = system.query(query);
        if (result.trapped) {
            for (const auto &solution : result.solutions)
                printf("%s ;\n", solution.toString().c_str());
            printf("error: %s.\n", result.error.c_str());
        } else if (!result.success) {
            printf("no.\n");
        } else {
            for (const auto &solution : result.solutions)
                printf("%s ;\n", solution.toString().c_str());
            printf("yes.\n");
        }
        fprintf(stderr,
                "[%llu inferences, %llu cycles = %.3f ms simulated, "
                "%.0f Klips]\n",
                (unsigned long long)result.inferences,
                (unsigned long long)result.cycles, result.seconds * 1e3,
                result.klips);

        if (want_stats) {
            std::ostringstream os;
            system.machine().stats().dump(os);
            fputs(os.str().c_str(), stderr);
        }
        if (want_profile)
            fputs(system.machine().profiler().report().c_str(), stderr);
        if (result.trapped)
            return 2;
        return result.success ? 0 : 1;
    } catch (const std::exception &e) {
        fprintf(stderr, "kcm_run: %s\n", e.what());
        return 2;
    }
}
