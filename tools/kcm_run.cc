/**
 * @file
 * kcm_run — command-line driver for the KCM system.
 *
 * Usage:
 *   kcm_run [options] [file.pl ...] -q 'goal'
 *
 * Options:
 *   -q GOAL        query to run (required)
 *   -n N           collect up to N solutions (default 1; 0 = all)
 *   -e TEXT        consult program text given inline
 *   --stats        dump machine statistics after the run
 *   --profile      print the macrocode/Prolog-level monitor report
 *   --profile-seq  with --profile: also collect and print the opcode
 *                  pair/triple sequence monitor (the input of
 *                  profile-guided fusion selection)
 *   --fusion M     superinstruction fusion in the fast core:
 *                  off | static (default; KCM_FUSION env overrides) |
 *                  profiled (runs the query once with the sequence
 *                  monitor to pick the fused sequences, then again
 *                  fused; measurements reported for the fused run)
 *   --disasm       print the disassembled code image and exit
 *   --save FILE    save the compiled image and exit
 *   --load FILE    run a previously saved image (no sources needed)
 *   --no-shallow   run in standard-WAM mode (immediate choice points)
 *   --generic      generic arithmetic (no native integer mode)
 *   --max-cycles N abort after N simulated cycles
 *   --fast         predecoded threaded execution core (the default)
 *   --oracle       decode-per-step execution core (the differential
 *                  reference; simulated results are identical)
 *   --db-facts FILE  preload FILE (plain facts only) into the dynamic
 *                  clause store; the facts' predicates are implicitly
 *                  declared dynamic. A malformed clause — bad syntax,
 *                  a rule, a non-callable term, an over-arity head —
 *                  aborts before anything is loaded, with a
 *                  diagnostic naming the file and clause.
 *
 * Supervision (any of these routes the query through a supervised
 * service::Session — checkpoints, restore-and-retry, clean failure):
 *   --deadline-ms N        wall-clock deadline per attempt
 *   --checkpoint-every K   snapshot checkpoint every K simulated
 *                          megacycles
 *   --retries N            recovery attempts after a trap
 *
 * SIGINT/SIGTERM stop the run at the next instruction-boundary slice:
 * solutions found so far are still printed (with a trailing
 * "% interrupted" marker) before the process exits.
 *
 * Exit codes: 0 = solutions found, 1 = clean "no", 2 = query failed
 * (trap, resource exhaustion, blown deadline, usage error, or a
 * missing/unreadable program or --db-facts file — always a one-line
 * diagnostic, never an uncaught exception), 3 = shed by an overloaded
 * service (kcm_serve semantics, reserved here), 4 = interrupted by
 * SIGINT/SIGTERM (partial solutions flushed).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/logging.hh"
#include "compiler/image_io.hh"
#include "core/predecode.hh"
#include "isa/disasm.hh"
#include "kcm/kcm.hh"
#include "service/session.hh"

namespace
{

void
onSignal(int)
{
    // Only an atomic store — async-signal-safe. Both the supervised
    // session and the interruptible query poll it between slices.
    kcm::service::requestServiceInterrupt();
}

void
installSignalHandlers()
{
    struct sigaction sa{};
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        kcm::fatal("cannot open ", path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** One consulted source, in command-line order: a file path (read
 *  inside main's try block, so a missing file is a one-line
 *  diagnostic + exit 2, not an uncaught exception) or inline -e
 *  text. */
struct SourceArg
{
    std::string value;
    bool isFile = false;
};

[[noreturn]] void
usage()
{
    fprintf(stderr,
            "usage: kcm_run [options] [file.pl ...] -q 'goal'\n"
            "  -q GOAL   -n N   -e TEXT   --stats   --profile\n"
            "  --disasm  --no-shallow  --generic  --max-cycles N\n"
            "  --fast    --oracle\n"
            "  --db-facts FILE  preload a fact file into the dynamic\n"
            "                   clause store (facts only; a malformed\n"
            "                   clause aborts with a diagnostic)\n"
            "supervision (runs the query in a supervised session):\n"
            "  --deadline-ms N       wall-clock deadline per attempt\n"
            "  --checkpoint-every K  checkpoint every K megacycles\n"
            "  --retries N           recovery attempts after a trap\n"
            "exit codes: 0 = solutions found, 1 = clean 'no',\n"
            "  2 = failed (trap, resources, deadline, usage),\n"
            "  3 = shed by an overloaded service,\n"
            "  4 = interrupted (partial solutions flushed)\n");
    exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    kcm::KcmOptions options;
    std::string query;
    bool want_stats = false;
    bool want_profile = false;
    bool want_disasm = false;
    std::string save_path;
    std::string load_path;
    std::vector<SourceArg> source_args;
    std::vector<std::string> fact_files;
    bool supervised = false;
    kcm::service::SessionOptions supervision;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "-q") {
            query = next();
        } else if (arg == "-n") {
            long n = atol(next().c_str());
            options.maxSolutions = n <= 0 ? SIZE_MAX : size_t(n);
        } else if (arg == "-e") {
            source_args.push_back({next(), false});
        } else if (arg == "--stats") {
            want_stats = true;
        } else if (arg == "--profile") {
            want_profile = true;
            options.machine.profile = true;
        } else if (arg == "--profile-seq") {
            want_profile = true;
            options.machine.profile = true;
            options.machine.profileSequences = true;
        } else if (arg == "--fusion") {
            std::string mode = next();
            if (mode == "off")
                options.machine.fusion.mode = kcm::FusionConfig::Mode::Off;
            else if (mode == "static")
                options.machine.fusion.mode =
                    kcm::FusionConfig::Mode::Static;
            else if (mode == "profiled")
                options.machine.fusion.mode =
                    kcm::FusionConfig::Mode::Profiled;
            else
                usage();
        } else if (arg == "--disasm") {
            want_disasm = true;
        } else if (arg == "--save") {
            save_path = next();
        } else if (arg == "--load") {
            load_path = next();
        } else if (arg == "--no-shallow") {
            options.machine.shallowBacktracking = false;
        } else if (arg == "--generic") {
            options.compiler.integerArithmetic = false;
        } else if (arg == "--db-facts") {
            fact_files.push_back(next());
        } else if (arg == "--max-cycles") {
            options.machine.maxCycles = strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--deadline-ms") {
            supervision.deadlineMs =
                strtoull(next().c_str(), nullptr, 10);
            supervised = true;
        } else if (arg == "--checkpoint-every") {
            supervision.checkpointEveryMcycles =
                strtoull(next().c_str(), nullptr, 10);
            supervised = true;
        } else if (arg == "--retries") {
            supervision.maxRetries =
                unsigned(strtoul(next().c_str(), nullptr, 10));
            supervised = true;
        } else if (arg == "--fast") {
            options.machine.fastDispatch = true;
        } else if (arg == "--oracle") {
            options.machine.fastDispatch = false;
        } else if (arg == "-h" || arg == "--help") {
            usage();
        } else if (!arg.empty() && arg[0] == '-') {
            fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
        } else {
            source_args.push_back({arg, true});
        }
    }
    if (query.empty() && load_path.empty())
        usage();

    options.machine.captureOutput = false; // stream I/O to stdout
    installSignalHandlers();

    try {
        // Read consulted files here, inside the try: a missing or
        // unreadable file is a one-line "kcm_run: fatal: cannot open
        // ..." + exit 2, never an uncaught exception.
        std::vector<std::string> sources;
        sources.reserve(source_args.size());
        for (const SourceArg &sa : source_args)
            sources.push_back(sa.isFile ? readFile(sa.value) : sa.value);

        if (!load_path.empty()) {
            // Run a downloaded image directly on the machine.
            kcm::CodeImage image = kcm::loadImageFile(load_path);
            kcm::Machine machine(options.machine);
            machine.load(image);
            kcm::RunStatus status = machine.run();
            size_t shown = 0;
            while (status == kcm::RunStatus::SolutionFound &&
                   shown < options.maxSolutions) {
                printf("%s ;\n",
                       machine.lastSolution().toString().c_str());
                ++shown;
                if (shown >= options.maxSolutions)
                    break;
                status = machine.nextSolution();
            }
            printf("%s.\n", shown ? "yes" : "no");
            fprintf(stderr, "[%llu cycles = %.3f ms simulated]\n",
                    (unsigned long long)machine.cycles(),
                    machine.seconds() * 1e3);
            return shown ? 0 : 1;
        }

        if (options.machine.fusion.mode ==
                kcm::FusionConfig::Mode::Profiled &&
            options.machine.fusion.sequences.empty() && !query.empty()) {
            // Profile-guided fusion: run the query once unfused with
            // the sequence monitor, select the hottest catalog
            // sequences, then run fused below. Only the fused run is
            // reported.
            kcm::KcmOptions prof = options;
            prof.machine.profile = true;
            prof.machine.profileSequences = true;
            prof.machine.fusion.mode = kcm::FusionConfig::Mode::Off;
            prof.machine.captureOutput = true;
            kcm::KcmSystem profSystem(prof);
            for (const auto &source : sources)
                profSystem.consult(source);
            for (const auto &path : fact_files)
                profSystem.preloadFacts(readFile(path), path);
            profSystem.query(query);
            options.machine.fusion.sequences = kcm::selectFusedSequences(
                profSystem.machine().profiler(), 12);
        }

        kcm::KcmSystem system(options);
        for (const auto &source : sources)
            system.consult(source);
        for (const auto &path : fact_files)
            system.preloadFacts(readFile(path), path);

        if (!save_path.empty()) {
            kcm::saveImageFile(system.compileOnly(query), save_path);
            fprintf(stderr, "image saved to %s\n", save_path.c_str());
            return 0;
        }

        if (want_disasm) {
            kcm::CodeImage image = system.compileOnly(query);
            printf("%s", kcm::disasmRange(image.words, 0,
                                          image.words.size())
                             .c_str());
            return 0;
        }

        if (supervised) {
            supervision.machine = options.machine;
            supervision.maxSolutions = options.maxSolutions == SIZE_MAX
                                           ? 0
                                           : options.maxSolutions;
            supervision.abortOnInterrupt = true;
            kcm::service::Session session(system.compileOnly(query),
                                          supervision);
            kcm::service::QueryOutcome outcome = session.run();

            for (const auto &solution : outcome.solutions)
                printf("%s ;\n", solution.toString().c_str());
            fprintf(stderr,
                    "[%llu inferences, %llu cycles = %.3f ms simulated; "
                    "%u retries, %u restarts, %llu checkpoints "
                    "(%llu bytes), %llu cycles recovered]\n",
                    (unsigned long long)outcome.inferences,
                    (unsigned long long)outcome.cycles,
                    double(outcome.cycles) * kcm::cycleSeconds * 1e3,
                    outcome.counters.retries, outcome.counters.restarts,
                    (unsigned long long)outcome.counters.checkpoints,
                    (unsigned long long)outcome.counters.checkpointBytes,
                    (unsigned long long)outcome.counters.recoveryCycles);
            if (outcome.status == kcm::service::QueryStatus::Shed) {
                printf("error: %s.\n",
                       outcome.failure.classification.c_str());
                return 3;
            }
            if (outcome.status == kcm::service::QueryStatus::Failed) {
                if (outcome.failure.classification == "interrupted") {
                    printf("%% interrupted.\n");
                    fflush(stdout);
                    return 4;
                }
                printf("error: %s.\n",
                       outcome.failure.classification.c_str());
                fprintf(stderr,
                        "[failed after %u attempts: %s; checkpoint age "
                        "%llu cycles]\n",
                        outcome.failure.attempts,
                        outcome.failure.detail.c_str(),
                        (unsigned long long)
                            outcome.failure.checkpointAgeCycles);
                return 2;
            }
            if (!outcome.error.empty()) {
                printf("error: %s.\n", outcome.error.c_str());
                return 2;
            }
            printf("%s.\n", outcome.success ? "yes" : "no");
            return outcome.success ? 0 : 1;
        }

        kcm::QueryResult result = system.query(
            query, [] { return kcm::service::serviceInterruptRequested(); });
        if (result.interrupted) {
            // Partial solutions first, so a long all-solutions run
            // killed from the shell still yields everything found.
            for (const auto &solution : result.solutions)
                printf("%s ;\n", solution.toString().c_str());
            printf("%% interrupted.\n");
            fflush(stdout);
            return 4;
        }
        if (result.trapped) {
            for (const auto &solution : result.solutions)
                printf("%s ;\n", solution.toString().c_str());
            printf("error: %s.\n", result.error.c_str());
        } else if (!result.success) {
            printf("no.\n");
        } else {
            for (const auto &solution : result.solutions)
                printf("%s ;\n", solution.toString().c_str());
            printf("yes.\n");
        }
        fprintf(stderr,
                "[%llu inferences, %llu cycles = %.3f ms simulated, "
                "%.0f Klips]\n",
                (unsigned long long)result.inferences,
                (unsigned long long)result.cycles, result.seconds * 1e3,
                result.klips);

        if (want_stats) {
            std::ostringstream os;
            system.machine().stats().dump(os);
            os << "host dispatch: " << system.machine().dispatches()
               << " dispatches, " << system.machine().fusedDispatches()
               << " fused heads, " << system.machine().fusedInlineSteps()
               << " inline constituents\n";
            fputs(os.str().c_str(), stderr);
        }
        if (want_profile)
            fputs(system.machine().profiler().report().c_str(), stderr);
        if (result.trapped)
            return 2;
        return result.success ? 0 : 1;
    } catch (const std::exception &e) {
        fprintf(stderr, "kcm_run: %s\n", e.what());
        return 2;
    }
}
