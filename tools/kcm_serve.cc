/**
 * @file
 * kcm_serve — batch query service driver.
 *
 * The host side of the paper's Fig. 1 deployment, production-shaped:
 * reads a Prolog program and a file of queries (one goal per line,
 * '%' comments and blank lines ignored), compiles every query
 * serially (atom-interning order keeps the simulated metrics
 * deterministic), executes them on a supervised session pool
 * (checkpoints, restore-and-retry, load shedding) and prints one JSON
 * document with per-query results and aggregate robustness counters.
 *
 * Usage:
 *   kcm_serve [options] program.pl queries.txt
 *
 * Options:
 *   --workers N           worker threads (default 4)
 *   --queue-depth N       admission-queue bound (default 64)
 *   --deadline-ms N       wall-clock deadline per attempt (default 0)
 *   --checkpoint-every K  checkpoint every K simulated megacycles
 *                         (default 4)
 *   --retries N           recovery attempts per query (default 3)
 *   --budget N            governor cycle budget per query (default 0)
 *   -n N                  solutions per query (default 1; 0 = all)
 *   --db-facts FILE       preload FILE (plain facts only) into every
 *                         query's dynamic clause store; a missing file
 *                         or malformed clause is a one-line diagnostic
 *                         + exit 2, before any query runs
 *   --oracle              decode-per-step execution core
 *
 * SIGINT/SIGTERM start a graceful shutdown: queries already running
 * abort cleanly at their next supervision slice (classification
 * "interrupted"), queued queries follow, and the full JSON document —
 * every completed result plus the classified interruptions — is still
 * flushed before exit.
 *
 * Exit codes: 0 = every query completed, 2 = at least one query
 * failed, 3 = at least one query shed (overloaded), 4 = interrupted
 * by SIGINT/SIGTERM (partial results were flushed).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "kcm/kcm.hh"
#include "service/session.hh"
#include "service/supervisor.hh"

namespace
{

void
onSignal(int)
{
    // Only an atomic store — async-signal-safe. Sessions poll the
    // flag at slice boundaries and abort with a classified failure.
    kcm::service::requestServiceInterrupt();
}

[[noreturn]] void
usage()
{
    fprintf(stderr,
            "usage: kcm_serve [options] program.pl queries.txt\n"
            "  --workers N  --queue-depth N  --deadline-ms N\n"
            "  --checkpoint-every K  --retries N  --budget N\n"
            "  -n N  --db-facts FILE  --oracle\n"
            "exit codes: 0 = all completed, 2 = any failed, "
            "3 = any shed,\n"
            "            4 = interrupted (partial results flushed)\n");
    exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        kcm::fatal("cannot open ", path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

const char *
statusName(kcm::service::QueryStatus status)
{
    switch (status) {
      case kcm::service::QueryStatus::Completed: return "completed";
      case kcm::service::QueryStatus::Failed: return "failed";
      case kcm::service::QueryStatus::Shed: return "shed";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    kcm::service::SupervisorOptions service;
    kcm::KcmOptions compile_options;
    size_t max_solutions = 1;
    std::string db_facts_path;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--workers") {
            service.workers =
                unsigned(strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--queue-depth") {
            service.maxQueueDepth =
                size_t(strtoull(next().c_str(), nullptr, 10));
        } else if (arg == "--deadline-ms") {
            service.session.deadlineMs =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--checkpoint-every") {
            service.session.checkpointEveryMcycles =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--retries") {
            service.session.maxRetries =
                unsigned(strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--budget") {
            service.session.machine.governor.cycleBudget =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "-n") {
            long n = atol(next().c_str());
            max_solutions = n <= 0 ? 0 : size_t(n);
        } else if (arg == "--db-facts") {
            db_facts_path = next();
        } else if (arg == "--oracle") {
            service.session.machine.fastDispatch = false;
        } else if (arg == "-h" || arg == "--help") {
            usage();
        } else if (!arg.empty() && arg[0] == '-') {
            fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2)
        usage();

    try {
        std::string program = readFile(files[0]);
        std::vector<std::string> goals;
        {
            std::istringstream lines(readFile(files[1]));
            std::string line;
            while (std::getline(lines, line)) {
                size_t start = line.find_first_not_of(" \t");
                if (start == std::string::npos || line[start] == '%')
                    continue;
                goals.push_back(line.substr(start));
            }
        }
        if (goals.empty())
            kcm::fatal("no queries in ", files[1]);

        service.session.maxSolutions = max_solutions;
        service.session.machine.captureOutput = true;
        service.session.abortOnInterrupt = true;
        compile_options.machine = service.session.machine;

        struct sigaction sa{};
        sa.sa_handler = onSignal;
        sigemptyset(&sa.sa_mask);
        sigaction(SIGINT, &sa, nullptr);
        sigaction(SIGTERM, &sa, nullptr);

        kcm::KcmSystem system(compile_options);
        system.consult(program);
        if (!db_facts_path.empty()) {
            std::ifstream in(db_facts_path);
            if (!in)
                kcm::fatal("--db-facts ", db_facts_path,
                           ": cannot open file");
            std::ostringstream os;
            os << in.rdbuf();
            system.preloadFacts(os.str(), db_facts_path);
        }

        kcm::service::Supervisor supervisor(service);
        for (size_t i = 0; i < goals.size(); ++i) {
            kcm::service::QueryJob job;
            job.id = kcm::cat("q", i);
            job.goal = goals[i];
            // Compiled here, on the submitting thread, in submission
            // order — see the determinism note in supervisor.hh.
            supervisor.submit(job, system.compileOnly(goals[i]));
        }
        auto results = supervisor.drain();
        auto stats = supervisor.stats();

        printf("{\n  \"results\": [\n");
        for (size_t i = 0; i < results.size(); ++i) {
            const auto &res = results[i];
            const auto &out = res.outcome;
            printf("    {\"id\": \"%s\", \"goal\": \"%s\", "
                   "\"status\": \"%s\", ",
                   jsonEscape(res.job.id).c_str(),
                   jsonEscape(res.job.goal).c_str(),
                   statusName(out.status));
            if (out.status == kcm::service::QueryStatus::Completed) {
                printf("\"success\": %s, \"answers\": [",
                       out.success ? "true" : "false");
                for (size_t s = 0; s < out.solutions.size(); ++s)
                    printf("%s\"%s\"", s ? ", " : "",
                           jsonEscape(out.solutions[s].toString())
                               .c_str());
                printf("], ");
                if (!out.error.empty())
                    printf("\"error\": \"%s\", ",
                           jsonEscape(out.error).c_str());
                printf("\"cycles\": %llu, \"inferences\": %llu, ",
                       (unsigned long long)out.cycles,
                       (unsigned long long)out.inferences);
            } else {
                printf("\"error\": \"%s\", \"attempts\": %u, "
                       "\"cyclesLost\": %llu, ",
                       jsonEscape(out.failure.classification).c_str(),
                       out.failure.attempts,
                       (unsigned long long)out.failure.cyclesLost);
            }
            printf("\"retries\": %u, \"restarts\": %u}%s\n",
                   out.counters.retries, out.counters.restarts,
                   i + 1 < results.size() ? "," : "");
        }
        printf("  ],\n");
        printf("  \"stats\": {\"submitted\": %llu, \"completed\": %llu, "
               "\"failed\": %llu, \"shed\": %llu, \"retries\": %llu, "
               "\"restarts\": %llu, \"checkpoints\": %llu, "
               "\"checkpointBytes\": %llu, \"recoveryCycles\": %llu}\n",
               (unsigned long long)stats.submitted,
               (unsigned long long)stats.completed,
               (unsigned long long)stats.failed,
               (unsigned long long)stats.shed,
               (unsigned long long)stats.retries,
               (unsigned long long)stats.restarts,
               (unsigned long long)stats.checkpoints,
               (unsigned long long)stats.checkpointBytes,
               (unsigned long long)stats.recoveryCycles);
        printf("}\n");
        fflush(stdout);

        if (kcm::service::serviceInterruptRequested())
            return 4; // partial results above are still valid JSON
        if (stats.shed)
            return 3;
        if (stats.failed)
            return 2;
        return 0;
    } catch (const std::exception &e) {
        fprintf(stderr, "kcm_serve: %s\n", e.what());
        return 2;
    }
}
