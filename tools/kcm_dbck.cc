/**
 * @file
 * kcm_dbck — offline verify/repair/compact for KCM journal files.
 *
 * Operates on a durable-database journal (`--db-journal` directory or
 * the `journal.kcmj` file inside it) while the daemon is *stopped*:
 *
 *   kcm_dbck [--verify] PATH   scan every record, replay the store,
 *                              report records/commits/ops, the tail
 *                              classification (clean | torn_tail |
 *                              corrupt_record) and the recovered
 *                              store's digest; never modifies the file
 *   kcm_dbck --repair PATH     verify, then truncate a torn or
 *                              corrupt tail at the last valid record
 *                              boundary — exactly what the daemon does
 *                              on startup, made explicit and loggable
 *   kcm_dbck --compact PATH    verify, then atomically rewrite the
 *                              journal as one snapshot record of the
 *                              surviving store (tmp + fsync + rename);
 *                              preserves the last commit id
 *   kcm_dbck --dump PATH       verify, then list every record's
 *                              offset (debugging / chaos tooling)
 *
 * The store digest is FNV-1a-64 over the store's canonical saveTo()
 * payload: two journals whose replays print the same digest rebuild
 * bit-identical stores (same sequence numbers, generations, skiplist
 * shapes — hence identical `scanned` counts on every engine).
 *
 * Exit codes:
 *   0  clean journal (verify/dump), or repair/compact succeeded with
 *      nothing dropped
 *   1  a torn or corrupt tail was detected (verify/dump), or bytes
 *      were dropped to fix it (repair/compact) — the surviving prefix
 *      is intact and replayable
 *   2  unusable: missing file, not a KCM journal, I/O error, usage
 */

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "base/checksum.hh"
#include "base/logging.hh"
#include "db/clause_store.hh"
#include "db/journal.hh"

namespace
{

[[noreturn]] void
usage()
{
    fprintf(stderr,
            "usage: kcm_dbck [--verify|--repair|--compact|--dump] "
            "DIR-or-journal.kcmj\n"
            "  --verify   scan + replay, report, never modify (default)\n"
            "  --repair   truncate a torn/corrupt tail at the last\n"
            "             valid record boundary\n"
            "  --compact  rewrite as one snapshot record (atomic)\n"
            "  --dump     verify + list record offsets\n"
            "exit codes: 0 = clean / nothing dropped, 1 = torn or\n"
            "corrupt tail detected (or dropped), 2 = unusable journal\n");
    exit(2);
}

void
report(const kcm::db::JournalScan &scan, const kcm::db::ClauseStore &store)
{
    printf("records:     %llu (%llu commits, %llu snapshots, "
           "%llu ops)\n",
           (unsigned long long)scan.records,
           (unsigned long long)scan.commits,
           (unsigned long long)scan.snapshots,
           (unsigned long long)scan.ops);
    printf("last commit: %llu (%llu since last snapshot)\n",
           (unsigned long long)scan.lastCommitId,
           (unsigned long long)scan.commitsSinceSnapshot);
    printf("bytes:       %llu good of %llu\n",
           (unsigned long long)scan.goodBytes,
           (unsigned long long)scan.fileBytes);
    printf("tail:        %s\n", scan.classification());
    if (!scan.clean())
        printf("reason:      %s\n", scan.reason.c_str());

    std::vector<uint8_t> bytes;
    store.saveTo(bytes);
    uint64_t live = 0;
    for (const kcm::Functor &f : store.knownPredicates())
        live += store.liveClauseCount(f);
    printf("store:       %zu predicates, %llu live clauses, "
           "generation %llu, digest %016llx\n",
           store.knownPredicates().size(), (unsigned long long)live,
           (unsigned long long)store.generation(),
           (unsigned long long)kcm::fnv1a64(bytes.data(), bytes.size()));
}

/** Take the same writer lock a live daemon holds before mutating the
 *  journal (repair/compact). Verify/dump stay lock-free: scanning a
 *  file mid-append at worst sees a partial tail record and reports it
 *  as torn, which is an honest read-only answer. The fd is held until
 *  process exit. Returns false (and explains) if a daemon has it. */
bool
lockForWriting(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return true; // missing file: let the scan produce the error
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        int err = errno;
        ::close(fd);
        if (err == EWOULDBLOCK) {
            fprintf(stderr,
                    "kcm_dbck: %s is locked by a running daemon; "
                    "stop it before --repair/--compact\n",
                    path.c_str());
            return false;
        }
        fprintf(stderr, "kcm_dbck: lock %s: %s\n", path.c_str(),
                strerror(err));
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    enum class Op { Verify, Repair, Compact, Dump } op = Op::Verify;
    std::string path_arg;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--verify")
            op = Op::Verify;
        else if (arg == "--repair")
            op = Op::Repair;
        else if (arg == "--compact")
            op = Op::Compact;
        else if (arg == "--dump")
            op = Op::Dump;
        else if (arg == "-h" || arg == "--help")
            usage();
        else if (!arg.empty() && arg[0] == '-') {
            fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
        } else if (path_arg.empty())
            path_arg = arg;
        else
            usage();
    }
    if (path_arg.empty())
        usage();

    try {
        const std::string path =
            kcm::db::Journal::journalFilePath(path_arg);

        if ((op == Op::Repair || op == Op::Compact) &&
            !lockForWriting(path))
            return 2;

        if (op == Op::Compact) {
            kcm::db::JournalScan before =
                kcm::db::Journal::compactFile(path, kcm::db::DynDbConfig{});
            kcm::db::ClauseStore after_store(kcm::db::DynDbConfig{});
            kcm::db::JournalScan after =
                kcm::db::Journal::scanFile(path, &after_store);
            printf("compacted %s\n", path.c_str());
            printf("before:      %llu records, %llu bytes, tail %s\n",
                   (unsigned long long)before.records,
                   (unsigned long long)before.fileBytes,
                   before.classification());
            report(after, after_store);
            if (!before.clean())
                printf("dropped:     %llu suspect bytes\n",
                       (unsigned long long)(before.fileBytes -
                                            before.goodBytes));
            return before.clean() ? 0 : 1;
        }

        kcm::db::ClauseStore store(kcm::db::DynDbConfig{});
        kcm::db::JournalScan scan =
            kcm::db::Journal::scanFile(path, &store);
        printf("journal:     %s\n", path.c_str());
        report(scan, store);

        if (op == Op::Dump) {
            for (size_t i = 0; i < scan.recordOffsets.size(); ++i)
                printf("record %4zu @ %llu\n", i,
                       (unsigned long long)scan.recordOffsets[i]);
        }

        if (op == Op::Repair && !scan.clean()) {
            kcm::db::Journal::truncateFile(path, scan.goodBytes);
            printf("repaired:    truncated %llu suspect bytes at "
                   "offset %llu\n",
                   (unsigned long long)(scan.fileBytes - scan.goodBytes),
                   (unsigned long long)scan.goodBytes);
            // Re-verify what we just wrote; a repair must leave a
            // clean journal behind.
            kcm::db::ClauseStore restore(kcm::db::DynDbConfig{});
            kcm::db::JournalScan rescan =
                kcm::db::Journal::scanFile(path, &restore);
            if (!rescan.clean()) {
                fprintf(stderr,
                        "kcm_dbck: repair left a %s journal: %s\n",
                        rescan.classification(), rescan.reason.c_str());
                return 2;
            }
        }

        return scan.clean() ? 0 : 1;
    } catch (const std::exception &e) {
        fprintf(stderr, "kcm_dbck: %s\n", e.what());
        return 2;
    }
}
