/**
 * @file
 * kcm_serverd — the always-on KCM query daemon.
 *
 * Binds a localhost TCP port, prints one JSON line with the bound
 * port to stdout ({"listening": <port>}), then serves the
 * newline-delimited JSON query protocol (service/server.hh) until
 * SIGTERM or SIGINT. The signal starts a graceful drain: the listen
 * socket closes, no further requests are read, every accepted query
 * finishes (or, past the grace period, is checkpoint-aborted with a
 * classified "interrupted" failure) and its reply is flushed. The
 * daemon then prints one final accounting line —
 *
 *   {"drain": true, "accepted": N, "replied": N, ...}
 *
 * — and exits 0. accepted == replied is the drain invariant the chaos
 * harness asserts: a shutdown loses no accepted query.
 *
 * Usage:
 *   kcm_serverd [options]
 *
 * Options:
 *   --port N             TCP port (default 0 = ephemeral, reported)
 *   --workers N          execution worker threads (default 4)
 *   --queue-depth N      admission-queue bound (default 64)
 *   --cache-mb N         warm-template cache budget in MiB (default 256)
 *   --deadline-ms N      default per-attempt query deadline (default 0)
 *   --checkpoint-every K checkpoint every K simulated Mcycles (default 4)
 *   --retries N          recovery attempts per query (default 3)
 *   --idle-timeout-ms N  per-connection idle timeout (default 30000)
 *   --read-deadline-ms N first byte -> full request bound (default 5000)
 *   --write-deadline-ms N reply write bound (default 5000)
 *   --max-inflight N     per-connection in-flight cap (default 8)
 *   --drain-grace-ms N   drain grace before aborting (default 5000)
 *   --db-facts FILE      preload FILE (plain facts only) into every
 *                        query's dynamic clause store; validated at
 *                        startup — a malformed clause (bad syntax, a
 *                        rule, a non-callable term, an over-arity
 *                        head) refuses to start with a diagnostic
 *   --db-journal DIR     durable dynamic database: open (or recover)
 *                        the write-ahead journal in DIR before
 *                        accepting connections; every query's
 *                        mutations are journaled before its reply is
 *                        written, and SIGTERM drain flushes the tail.
 *                        With --db-facts the file seeds the store on
 *                        first boot only (journal commit #1).
 *   --journal-sync MODE  fsync policy: always | group | none
 *                        (default group; see db/journal.hh for the
 *                        durability model of each)
 *   --journal-group-ms N group-commit window in ms (default 5)
 *   --journal-snapshot-every N
 *                        write a compacting snapshot record every N
 *                        commits (default 1024)
 *   --mem-budget-mb N    per-query data-zone memory budget in MiB
 *                        (default 0 = ungoverned); exceeding it fails
 *                        the query with catchable resource_error(memory)
 *   --global-mem-mb N    aggregate resident-memory budget across all
 *                        admitted queries in MiB (default 0 = off);
 *                        admissions beyond it are refused "overloaded"
 *   --mem-charge-mb N    memory charge assumed for an ungoverned query
 *                        (default 32)
 *   --no-hedging         disable hedged retries for stragglers
 *   --hedge-factor F     hedge a query past F x its shape's latency
 *                        EWMA (default 3.0)
 *   --hedge-min-ms N     never hedge before N ms elapsed (default 50)
 *   --hedge-poll-ms N    straggler-monitor poll period (default 2)
 *   --no-breakers        disable per-shape circuit breakers
 *   --breaker-threshold N consecutive classified failures that open a
 *                        shape's breaker (default 5)
 *   --breaker-open-ms N  breaker cooldown before a half-open probe
 *                        (default 250)
 *   --jitter-seed N      seed for the deterministic retry_after_ms
 *                        jitter (tests; default fixed)
 *   --max-line-bytes N   request frame cap in bytes (default 4 MiB);
 *                        oversized frames are classified
 *                        "frame_too_large"
 *   --no-stdlib          do not consult the bundled standard library
 *   --chaos-hooks        enable the chaos ops ("corrupt_cache", the
 *                        "chaos_slice_delay_us" request field)
 *   --oracle             decode-per-step execution core
 *
 * Exit codes: 0 = clean drain after SIGTERM/SIGINT, 2 = startup or
 * usage error.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "base/logging.hh"
#include "kcm/kcm.hh"
#include "service/server.hh"

namespace
{

kcm::service::Server *activeServer = nullptr;

void
onSignal(int)
{
    // Only an atomic store — async-signal-safe. The server's drain
    // machinery polls the flag.
    if (activeServer)
        activeServer->requestDrain();
}

[[noreturn]] void
usage()
{
    fprintf(stderr,
            "usage: kcm_serverd [options]\n"
            "  --port N  --workers N  --queue-depth N  --cache-mb N\n"
            "  --deadline-ms N  --checkpoint-every K  --retries N\n"
            "  --idle-timeout-ms N  --read-deadline-ms N\n"
            "  --write-deadline-ms N  --max-inflight N\n"
            "  --drain-grace-ms N  --db-facts FILE  --no-stdlib\n"
            "  --db-journal DIR  --journal-sync always|group|none\n"
            "  --journal-group-ms N  --journal-snapshot-every N\n"
            "  --mem-budget-mb N  --global-mem-mb N  --mem-charge-mb N\n"
            "  --no-hedging  --hedge-factor F  --hedge-min-ms N\n"
            "  --hedge-poll-ms N  --no-breakers  --breaker-threshold N\n"
            "  --breaker-open-ms N  --jitter-seed N  --max-line-bytes N\n"
            "  --chaos-hooks  --oracle\n"
            "exit codes: 0 = clean drain on SIGTERM/SIGINT, "
            "2 = startup error\n");
    exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    kcm::service::ServerOptions options;
    std::string db_facts_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--port") {
            options.port =
                uint16_t(strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--workers") {
            options.workers =
                unsigned(strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--queue-depth") {
            options.maxQueueDepth =
                size_t(strtoull(next().c_str(), nullptr, 10));
        } else if (arg == "--cache-mb") {
            options.cacheBudgetBytes =
                strtoull(next().c_str(), nullptr, 10) << 20;
        } else if (arg == "--deadline-ms") {
            options.session.deadlineMs =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--checkpoint-every") {
            options.session.checkpointEveryMcycles =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--retries") {
            options.session.maxRetries =
                unsigned(strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--idle-timeout-ms") {
            options.idleTimeoutMs =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--read-deadline-ms") {
            options.readDeadlineMs =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--write-deadline-ms") {
            options.writeDeadlineMs =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--max-inflight") {
            options.maxInflightPerConn =
                unsigned(strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--drain-grace-ms") {
            options.drainGraceMs =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--db-facts") {
            db_facts_path = next();
        } else if (arg == "--db-journal") {
            options.dbJournalDir = next();
        } else if (arg == "--journal-sync") {
            std::string mode = next();
            if (mode == "always")
                options.journal.sync = kcm::db::JournalSync::Always;
            else if (mode == "group")
                options.journal.sync = kcm::db::JournalSync::Group;
            else if (mode == "none")
                options.journal.sync = kcm::db::JournalSync::None;
            else
                usage();
        } else if (arg == "--journal-group-ms") {
            options.journal.groupWindowMs =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--journal-snapshot-every") {
            options.journal.snapshotEvery =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--mem-budget-mb") {
            options.session.machine.governor.memoryBudgetBytes =
                strtoull(next().c_str(), nullptr, 10) << 20;
        } else if (arg == "--global-mem-mb") {
            options.globalMemoryBudgetBytes =
                strtoull(next().c_str(), nullptr, 10) << 20;
        } else if (arg == "--mem-charge-mb") {
            options.defaultMemoryChargeBytes =
                strtoull(next().c_str(), nullptr, 10) << 20;
        } else if (arg == "--no-hedging") {
            options.hedging = false;
        } else if (arg == "--hedge-factor") {
            options.hedgeLatencyFactor =
                strtod(next().c_str(), nullptr);
        } else if (arg == "--hedge-min-ms") {
            options.hedgeMinMs = strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--hedge-poll-ms") {
            options.hedgePollMs =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--no-breakers") {
            options.breaker.enabled = false;
        } else if (arg == "--breaker-threshold") {
            options.breaker.failureThreshold =
                unsigned(strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--breaker-open-ms") {
            options.breaker.openMs =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--jitter-seed") {
            options.retryJitterSeed =
                strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--max-line-bytes") {
            options.maxLineBytes =
                size_t(strtoull(next().c_str(), nullptr, 10));
        } else if (arg == "--no-stdlib") {
            options.consultStdlib = false;
        } else if (arg == "--chaos-hooks") {
            options.chaosHooks = true;
        } else if (arg == "--oracle") {
            options.session.machine.fastDispatch = false;
        } else if (arg == "-h" || arg == "--help") {
            usage();
        } else {
            fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
        }
    }

    try {
        if (!db_facts_path.empty()) {
            std::ifstream in(db_facts_path);
            if (!in)
                kcm::fatal("--db-facts ", db_facts_path,
                           ": cannot open file");
            std::ostringstream os;
            os << in.rdbuf();
            options.dbFactsSource = os.str();
            options.dbFactsOrigin = db_facts_path;
            // Validate up front: a malformed clause must refuse to
            // start the daemon, not fail every later query.
            kcm::KcmSystem probe;
            probe.preloadFacts(options.dbFactsSource,
                               options.dbFactsOrigin);
        }

        kcm::service::Server server(options);
        server.start();
        activeServer = &server;

        struct sigaction sa{};
        sa.sa_handler = onSignal;
        sigemptyset(&sa.sa_mask);
        sigaction(SIGTERM, &sa, nullptr);
        sigaction(SIGINT, &sa, nullptr);
        signal(SIGPIPE, SIG_IGN);

        printf("{\"listening\": %u}\n", unsigned(server.port()));
        fflush(stdout);

        server.waitDrained();
        activeServer = nullptr;

        auto c = server.counters();
        auto cache = server.cacheStats();
        auto pool = server.poolStats();
        auto brk = server.breakerStats();
        printf("{\"drain\": true, \"accepted\": %llu, "
               "\"replied\": %llu, \"interrupted\": %llu, "
               "\"requests\": %llu, \"bad_requests\": %llu, "
               "\"overloaded\": %llu, \"compiles\": %llu, "
               "\"cache_hits\": %llu, \"cache_misses\": %llu, "
               "\"cache_corrupt_evictions\": %llu, "
               "\"corrupt_retries\": %llu, "
               "\"pool_completed\": %llu, \"pool_failed\": %llu, "
               "\"frame_too_large\": %llu, "
               "\"hedges\": %llu, \"hedge_wins\": %llu, "
               "\"deadline_propagated_sheds\": %llu, "
               "\"mem_aborts\": %llu, "
               "\"mem_admission_refusals\": %llu, "
               "\"breaker_open\": %llu, \"breaker_reopened\": %llu, "
               "\"breaker_closed\": %llu, "
               "\"breaker_fast_fails\": %llu, "
               "\"breaker_probes\": %llu",
               (unsigned long long)c.queriesAccepted,
               (unsigned long long)c.queriesReplied,
               (unsigned long long)c.interrupted,
               (unsigned long long)c.requests,
               (unsigned long long)c.badRequests,
               (unsigned long long)c.overloaded,
               (unsigned long long)c.compiles,
               (unsigned long long)cache.hits,
               (unsigned long long)cache.misses,
               (unsigned long long)cache.corruptEvictions,
               (unsigned long long)c.corruptRetries,
               (unsigned long long)pool.completed,
               (unsigned long long)pool.failed,
               (unsigned long long)c.frameTooLarge,
               (unsigned long long)pool.hedges,
               (unsigned long long)pool.hedgeWins,
               (unsigned long long)pool.deadlinePropagatedSheds,
               (unsigned long long)pool.memAborts,
               (unsigned long long)pool.memAdmissionRefusals,
               (unsigned long long)brk.opened,
               (unsigned long long)brk.reopened,
               (unsigned long long)brk.closed,
               (unsigned long long)brk.fastFails,
               (unsigned long long)brk.probes);
        if (const kcm::db::JournaledStore *db = server.durableDb()) {
            printf(", \"db_commits\": %llu, \"db_ops\": %llu, "
                   "\"journal_commits\": %llu, "
                   "\"journal_snapshots\": %llu, "
                   "\"journal_bytes\": %llu",
                   (unsigned long long)pool.dbCommits,
                   (unsigned long long)pool.dbOps,
                   (unsigned long long)db->commitsWritten(),
                   (unsigned long long)db->snapshotsWritten(),
                   (unsigned long long)db->bytesWritten());
        }
        printf("}\n");
        fflush(stdout);
        return c.queriesAccepted == c.queriesReplied ? 0 : 2;
    } catch (const std::exception &e) {
        fprintf(stderr, "kcm_serverd: %s\n", e.what());
        return 2;
    }
}
