file(REMOVE_RECURSE
  "CMakeFiles/table3_quintus.dir/table3_quintus.cc.o"
  "CMakeFiles/table3_quintus.dir/table3_quintus.cc.o.d"
  "table3_quintus"
  "table3_quintus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_quintus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
