# Empty compiler generated dependencies file for table3_quintus.
# This may be replaced when dependencies are built.
