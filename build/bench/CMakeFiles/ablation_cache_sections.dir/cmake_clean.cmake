file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_sections.dir/ablation_cache_sections.cc.o"
  "CMakeFiles/ablation_cache_sections.dir/ablation_cache_sections.cc.o.d"
  "ablation_cache_sections"
  "ablation_cache_sections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_sections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
