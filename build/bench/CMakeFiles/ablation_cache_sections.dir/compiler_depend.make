# Empty compiler generated dependencies file for ablation_cache_sections.
# This may be replaced when dependencies are built.
