file(REMOVE_RECURSE
  "CMakeFiles/table2_plm.dir/table2_plm.cc.o"
  "CMakeFiles/table2_plm.dir/table2_plm.cc.o.d"
  "table2_plm"
  "table2_plm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_plm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
