# Empty compiler generated dependencies file for table2_plm.
# This may be replaced when dependencies are built.
