file(REMOVE_RECURSE
  "CMakeFiles/ablation_shallow.dir/ablation_shallow.cc.o"
  "CMakeFiles/ablation_shallow.dir/ablation_shallow.cc.o.d"
  "ablation_shallow"
  "ablation_shallow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shallow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
