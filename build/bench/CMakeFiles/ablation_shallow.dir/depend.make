# Empty dependencies file for ablation_shallow.
# This may be replaced when dependencies are built.
