file(REMOVE_RECURSE
  "CMakeFiles/cache_collision.dir/cache_collision.cc.o"
  "CMakeFiles/cache_collision.dir/cache_collision.cc.o.d"
  "cache_collision"
  "cache_collision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_collision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
