# Empty compiler generated dependencies file for cache_collision.
# This may be replaced when dependencies are built.
