# Empty dependencies file for table4_peak.
# This may be replaced when dependencies are built.
