file(REMOVE_RECURSE
  "CMakeFiles/table4_peak.dir/table4_peak.cc.o"
  "CMakeFiles/table4_peak.dir/table4_peak.cc.o.d"
  "table4_peak"
  "table4_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
