file(REMOVE_RECURSE
  "CMakeFiles/ablation_units.dir/ablation_units.cc.o"
  "CMakeFiles/ablation_units.dir/ablation_units.cc.o.d"
  "ablation_units"
  "ablation_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
