# Empty dependencies file for ablation_units.
# This may be replaced when dependencies are built.
