file(REMOVE_RECURSE
  "CMakeFiles/memory_traffic.dir/memory_traffic.cc.o"
  "CMakeFiles/memory_traffic.dir/memory_traffic.cc.o.d"
  "memory_traffic"
  "memory_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
