# Empty compiler generated dependencies file for memory_traffic.
# This may be replaced when dependencies are built.
