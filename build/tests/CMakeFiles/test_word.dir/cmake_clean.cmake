file(REMOVE_RECURSE
  "CMakeFiles/test_word.dir/test_word.cc.o"
  "CMakeFiles/test_word.dir/test_word.cc.o.d"
  "test_word"
  "test_word.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_word.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
