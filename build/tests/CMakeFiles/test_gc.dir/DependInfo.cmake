
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gc.cc" "tests/CMakeFiles/test_gc.dir/test_gc.cc.o" "gcc" "tests/CMakeFiles/test_gc.dir/test_gc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kcm_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_prolog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
