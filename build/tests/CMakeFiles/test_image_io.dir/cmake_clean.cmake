file(REMOVE_RECURSE
  "CMakeFiles/test_image_io.dir/test_image_io.cc.o"
  "CMakeFiles/test_image_io.dir/test_image_io.cc.o.d"
  "test_image_io"
  "test_image_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_image_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
