file(REMOVE_RECURSE
  "CMakeFiles/test_term_writer.dir/test_term_writer.cc.o"
  "CMakeFiles/test_term_writer.dir/test_term_writer.cc.o.d"
  "test_term_writer"
  "test_term_writer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_term_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
