# Empty dependencies file for test_term_writer.
# This may be replaced when dependencies are built.
