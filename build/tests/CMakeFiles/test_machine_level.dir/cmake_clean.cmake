file(REMOVE_RECURSE
  "CMakeFiles/test_machine_level.dir/test_machine_level.cc.o"
  "CMakeFiles/test_machine_level.dir/test_machine_level.cc.o.d"
  "test_machine_level"
  "test_machine_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
