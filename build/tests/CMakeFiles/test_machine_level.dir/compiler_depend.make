# Empty compiler generated dependencies file for test_machine_level.
# This may be replaced when dependencies are built.
