file(REMOVE_RECURSE
  "CMakeFiles/test_stdlib.dir/test_stdlib.cc.o"
  "CMakeFiles/test_stdlib.dir/test_stdlib.cc.o.d"
  "test_stdlib"
  "test_stdlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stdlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
