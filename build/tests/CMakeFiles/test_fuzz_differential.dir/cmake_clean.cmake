file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_differential.dir/test_fuzz_differential.cc.o"
  "CMakeFiles/test_fuzz_differential.dir/test_fuzz_differential.cc.o.d"
  "test_fuzz_differential"
  "test_fuzz_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
