file(REMOVE_RECURSE
  "CMakeFiles/test_shallow.dir/test_shallow.cc.o"
  "CMakeFiles/test_shallow.dir/test_shallow.cc.o.d"
  "test_shallow"
  "test_shallow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shallow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
