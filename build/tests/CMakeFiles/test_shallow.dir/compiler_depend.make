# Empty compiler generated dependencies file for test_shallow.
# This may be replaced when dependencies are built.
