file(REMOVE_RECURSE
  "CMakeFiles/test_normalize.dir/test_normalize.cc.o"
  "CMakeFiles/test_normalize.dir/test_normalize.cc.o.d"
  "test_normalize"
  "test_normalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_normalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
