file(REMOVE_RECURSE
  "libkcm_core.a"
)
