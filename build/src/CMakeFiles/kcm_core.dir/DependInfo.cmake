
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/builtins.cc" "src/CMakeFiles/kcm_core.dir/core/builtins.cc.o" "gcc" "src/CMakeFiles/kcm_core.dir/core/builtins.cc.o.d"
  "/root/repo/src/core/exec_index.cc" "src/CMakeFiles/kcm_core.dir/core/exec_index.cc.o" "gcc" "src/CMakeFiles/kcm_core.dir/core/exec_index.cc.o.d"
  "/root/repo/src/core/exec_instr.cc" "src/CMakeFiles/kcm_core.dir/core/exec_instr.cc.o" "gcc" "src/CMakeFiles/kcm_core.dir/core/exec_instr.cc.o.d"
  "/root/repo/src/core/gc.cc" "src/CMakeFiles/kcm_core.dir/core/gc.cc.o" "gcc" "src/CMakeFiles/kcm_core.dir/core/gc.cc.o.d"
  "/root/repo/src/core/machine.cc" "src/CMakeFiles/kcm_core.dir/core/machine.cc.o" "gcc" "src/CMakeFiles/kcm_core.dir/core/machine.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/CMakeFiles/kcm_core.dir/core/profiler.cc.o" "gcc" "src/CMakeFiles/kcm_core.dir/core/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kcm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_prolog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
