file(REMOVE_RECURSE
  "CMakeFiles/kcm_core.dir/core/builtins.cc.o"
  "CMakeFiles/kcm_core.dir/core/builtins.cc.o.d"
  "CMakeFiles/kcm_core.dir/core/exec_index.cc.o"
  "CMakeFiles/kcm_core.dir/core/exec_index.cc.o.d"
  "CMakeFiles/kcm_core.dir/core/exec_instr.cc.o"
  "CMakeFiles/kcm_core.dir/core/exec_instr.cc.o.d"
  "CMakeFiles/kcm_core.dir/core/gc.cc.o"
  "CMakeFiles/kcm_core.dir/core/gc.cc.o.d"
  "CMakeFiles/kcm_core.dir/core/machine.cc.o"
  "CMakeFiles/kcm_core.dir/core/machine.cc.o.d"
  "CMakeFiles/kcm_core.dir/core/profiler.cc.o"
  "CMakeFiles/kcm_core.dir/core/profiler.cc.o.d"
  "libkcm_core.a"
  "libkcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
