# Empty dependencies file for kcm_core.
# This may be replaced when dependencies are built.
