
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/kcm_isa.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/kcm_isa.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/opcodes.cc" "src/CMakeFiles/kcm_isa.dir/isa/opcodes.cc.o" "gcc" "src/CMakeFiles/kcm_isa.dir/isa/opcodes.cc.o.d"
  "/root/repo/src/isa/tags.cc" "src/CMakeFiles/kcm_isa.dir/isa/tags.cc.o" "gcc" "src/CMakeFiles/kcm_isa.dir/isa/tags.cc.o.d"
  "/root/repo/src/isa/word.cc" "src/CMakeFiles/kcm_isa.dir/isa/word.cc.o" "gcc" "src/CMakeFiles/kcm_isa.dir/isa/word.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kcm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
