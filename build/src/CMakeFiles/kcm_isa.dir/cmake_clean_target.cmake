file(REMOVE_RECURSE
  "libkcm_isa.a"
)
