file(REMOVE_RECURSE
  "CMakeFiles/kcm_isa.dir/isa/disasm.cc.o"
  "CMakeFiles/kcm_isa.dir/isa/disasm.cc.o.d"
  "CMakeFiles/kcm_isa.dir/isa/opcodes.cc.o"
  "CMakeFiles/kcm_isa.dir/isa/opcodes.cc.o.d"
  "CMakeFiles/kcm_isa.dir/isa/tags.cc.o"
  "CMakeFiles/kcm_isa.dir/isa/tags.cc.o.d"
  "CMakeFiles/kcm_isa.dir/isa/word.cc.o"
  "CMakeFiles/kcm_isa.dir/isa/word.cc.o.d"
  "libkcm_isa.a"
  "libkcm_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcm_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
