# Empty compiler generated dependencies file for kcm_isa.
# This may be replaced when dependencies are built.
