
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/code_cache.cc" "src/CMakeFiles/kcm_mem.dir/mem/code_cache.cc.o" "gcc" "src/CMakeFiles/kcm_mem.dir/mem/code_cache.cc.o.d"
  "/root/repo/src/mem/data_cache.cc" "src/CMakeFiles/kcm_mem.dir/mem/data_cache.cc.o" "gcc" "src/CMakeFiles/kcm_mem.dir/mem/data_cache.cc.o.d"
  "/root/repo/src/mem/main_memory.cc" "src/CMakeFiles/kcm_mem.dir/mem/main_memory.cc.o" "gcc" "src/CMakeFiles/kcm_mem.dir/mem/main_memory.cc.o.d"
  "/root/repo/src/mem/mem_system.cc" "src/CMakeFiles/kcm_mem.dir/mem/mem_system.cc.o" "gcc" "src/CMakeFiles/kcm_mem.dir/mem/mem_system.cc.o.d"
  "/root/repo/src/mem/mmu.cc" "src/CMakeFiles/kcm_mem.dir/mem/mmu.cc.o" "gcc" "src/CMakeFiles/kcm_mem.dir/mem/mmu.cc.o.d"
  "/root/repo/src/mem/zone_check.cc" "src/CMakeFiles/kcm_mem.dir/mem/zone_check.cc.o" "gcc" "src/CMakeFiles/kcm_mem.dir/mem/zone_check.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kcm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
