file(REMOVE_RECURSE
  "libkcm_mem.a"
)
