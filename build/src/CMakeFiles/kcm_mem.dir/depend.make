# Empty dependencies file for kcm_mem.
# This may be replaced when dependencies are built.
