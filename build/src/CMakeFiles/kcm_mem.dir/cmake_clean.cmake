file(REMOVE_RECURSE
  "CMakeFiles/kcm_mem.dir/mem/code_cache.cc.o"
  "CMakeFiles/kcm_mem.dir/mem/code_cache.cc.o.d"
  "CMakeFiles/kcm_mem.dir/mem/data_cache.cc.o"
  "CMakeFiles/kcm_mem.dir/mem/data_cache.cc.o.d"
  "CMakeFiles/kcm_mem.dir/mem/main_memory.cc.o"
  "CMakeFiles/kcm_mem.dir/mem/main_memory.cc.o.d"
  "CMakeFiles/kcm_mem.dir/mem/mem_system.cc.o"
  "CMakeFiles/kcm_mem.dir/mem/mem_system.cc.o.d"
  "CMakeFiles/kcm_mem.dir/mem/mmu.cc.o"
  "CMakeFiles/kcm_mem.dir/mem/mmu.cc.o.d"
  "CMakeFiles/kcm_mem.dir/mem/zone_check.cc.o"
  "CMakeFiles/kcm_mem.dir/mem/zone_check.cc.o.d"
  "libkcm_mem.a"
  "libkcm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
