
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/assembler.cc" "src/CMakeFiles/kcm_compiler.dir/compiler/assembler.cc.o" "gcc" "src/CMakeFiles/kcm_compiler.dir/compiler/assembler.cc.o.d"
  "/root/repo/src/compiler/builtin_defs.cc" "src/CMakeFiles/kcm_compiler.dir/compiler/builtin_defs.cc.o" "gcc" "src/CMakeFiles/kcm_compiler.dir/compiler/builtin_defs.cc.o.d"
  "/root/repo/src/compiler/codegen.cc" "src/CMakeFiles/kcm_compiler.dir/compiler/codegen.cc.o" "gcc" "src/CMakeFiles/kcm_compiler.dir/compiler/codegen.cc.o.d"
  "/root/repo/src/compiler/compiler.cc" "src/CMakeFiles/kcm_compiler.dir/compiler/compiler.cc.o" "gcc" "src/CMakeFiles/kcm_compiler.dir/compiler/compiler.cc.o.d"
  "/root/repo/src/compiler/image_io.cc" "src/CMakeFiles/kcm_compiler.dir/compiler/image_io.cc.o" "gcc" "src/CMakeFiles/kcm_compiler.dir/compiler/image_io.cc.o.d"
  "/root/repo/src/compiler/indexing.cc" "src/CMakeFiles/kcm_compiler.dir/compiler/indexing.cc.o" "gcc" "src/CMakeFiles/kcm_compiler.dir/compiler/indexing.cc.o.d"
  "/root/repo/src/compiler/normalize.cc" "src/CMakeFiles/kcm_compiler.dir/compiler/normalize.cc.o" "gcc" "src/CMakeFiles/kcm_compiler.dir/compiler/normalize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kcm_prolog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kcm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
