file(REMOVE_RECURSE
  "libkcm_compiler.a"
)
