file(REMOVE_RECURSE
  "CMakeFiles/kcm_compiler.dir/compiler/assembler.cc.o"
  "CMakeFiles/kcm_compiler.dir/compiler/assembler.cc.o.d"
  "CMakeFiles/kcm_compiler.dir/compiler/builtin_defs.cc.o"
  "CMakeFiles/kcm_compiler.dir/compiler/builtin_defs.cc.o.d"
  "CMakeFiles/kcm_compiler.dir/compiler/codegen.cc.o"
  "CMakeFiles/kcm_compiler.dir/compiler/codegen.cc.o.d"
  "CMakeFiles/kcm_compiler.dir/compiler/compiler.cc.o"
  "CMakeFiles/kcm_compiler.dir/compiler/compiler.cc.o.d"
  "CMakeFiles/kcm_compiler.dir/compiler/image_io.cc.o"
  "CMakeFiles/kcm_compiler.dir/compiler/image_io.cc.o.d"
  "CMakeFiles/kcm_compiler.dir/compiler/indexing.cc.o"
  "CMakeFiles/kcm_compiler.dir/compiler/indexing.cc.o.d"
  "CMakeFiles/kcm_compiler.dir/compiler/normalize.cc.o"
  "CMakeFiles/kcm_compiler.dir/compiler/normalize.cc.o.d"
  "libkcm_compiler.a"
  "libkcm_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcm_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
