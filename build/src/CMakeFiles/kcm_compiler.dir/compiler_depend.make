# Empty compiler generated dependencies file for kcm_compiler.
# This may be replaced when dependencies are built.
