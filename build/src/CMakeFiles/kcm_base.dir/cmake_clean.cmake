file(REMOVE_RECURSE
  "CMakeFiles/kcm_base.dir/base/logging.cc.o"
  "CMakeFiles/kcm_base.dir/base/logging.cc.o.d"
  "CMakeFiles/kcm_base.dir/base/stats.cc.o"
  "CMakeFiles/kcm_base.dir/base/stats.cc.o.d"
  "CMakeFiles/kcm_base.dir/base/strutil.cc.o"
  "CMakeFiles/kcm_base.dir/base/strutil.cc.o.d"
  "libkcm_base.a"
  "libkcm_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcm_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
