file(REMOVE_RECURSE
  "libkcm_base.a"
)
