# Empty dependencies file for kcm_base.
# This may be replaced when dependencies are built.
