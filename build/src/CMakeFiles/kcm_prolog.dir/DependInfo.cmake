
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prolog/atom_table.cc" "src/CMakeFiles/kcm_prolog.dir/prolog/atom_table.cc.o" "gcc" "src/CMakeFiles/kcm_prolog.dir/prolog/atom_table.cc.o.d"
  "/root/repo/src/prolog/lexer.cc" "src/CMakeFiles/kcm_prolog.dir/prolog/lexer.cc.o" "gcc" "src/CMakeFiles/kcm_prolog.dir/prolog/lexer.cc.o.d"
  "/root/repo/src/prolog/operators.cc" "src/CMakeFiles/kcm_prolog.dir/prolog/operators.cc.o" "gcc" "src/CMakeFiles/kcm_prolog.dir/prolog/operators.cc.o.d"
  "/root/repo/src/prolog/parser.cc" "src/CMakeFiles/kcm_prolog.dir/prolog/parser.cc.o" "gcc" "src/CMakeFiles/kcm_prolog.dir/prolog/parser.cc.o.d"
  "/root/repo/src/prolog/term.cc" "src/CMakeFiles/kcm_prolog.dir/prolog/term.cc.o" "gcc" "src/CMakeFiles/kcm_prolog.dir/prolog/term.cc.o.d"
  "/root/repo/src/prolog/writer.cc" "src/CMakeFiles/kcm_prolog.dir/prolog/writer.cc.o" "gcc" "src/CMakeFiles/kcm_prolog.dir/prolog/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kcm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
