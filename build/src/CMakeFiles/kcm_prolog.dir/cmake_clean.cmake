file(REMOVE_RECURSE
  "CMakeFiles/kcm_prolog.dir/prolog/atom_table.cc.o"
  "CMakeFiles/kcm_prolog.dir/prolog/atom_table.cc.o.d"
  "CMakeFiles/kcm_prolog.dir/prolog/lexer.cc.o"
  "CMakeFiles/kcm_prolog.dir/prolog/lexer.cc.o.d"
  "CMakeFiles/kcm_prolog.dir/prolog/operators.cc.o"
  "CMakeFiles/kcm_prolog.dir/prolog/operators.cc.o.d"
  "CMakeFiles/kcm_prolog.dir/prolog/parser.cc.o"
  "CMakeFiles/kcm_prolog.dir/prolog/parser.cc.o.d"
  "CMakeFiles/kcm_prolog.dir/prolog/term.cc.o"
  "CMakeFiles/kcm_prolog.dir/prolog/term.cc.o.d"
  "CMakeFiles/kcm_prolog.dir/prolog/writer.cc.o"
  "CMakeFiles/kcm_prolog.dir/prolog/writer.cc.o.d"
  "libkcm_prolog.a"
  "libkcm_prolog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcm_prolog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
