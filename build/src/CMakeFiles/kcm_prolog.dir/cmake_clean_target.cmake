file(REMOVE_RECURSE
  "libkcm_prolog.a"
)
