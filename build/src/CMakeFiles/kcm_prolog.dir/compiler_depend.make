# Empty compiler generated dependencies file for kcm_prolog.
# This may be replaced when dependencies are built.
