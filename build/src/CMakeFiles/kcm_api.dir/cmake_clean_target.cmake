file(REMOVE_RECURSE
  "libkcm_api.a"
)
