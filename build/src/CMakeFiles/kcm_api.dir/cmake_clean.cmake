file(REMOVE_RECURSE
  "CMakeFiles/kcm_api.dir/kcm/kcm.cc.o"
  "CMakeFiles/kcm_api.dir/kcm/kcm.cc.o.d"
  "CMakeFiles/kcm_api.dir/kcm/stdlib.cc.o"
  "CMakeFiles/kcm_api.dir/kcm/stdlib.cc.o.d"
  "libkcm_api.a"
  "libkcm_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcm_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
