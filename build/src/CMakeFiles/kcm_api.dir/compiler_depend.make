# Empty compiler generated dependencies file for kcm_api.
# This may be replaced when dependencies are built.
