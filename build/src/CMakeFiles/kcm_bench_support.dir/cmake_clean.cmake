file(REMOVE_RECURSE
  "CMakeFiles/kcm_bench_support.dir/bench_support/harness.cc.o"
  "CMakeFiles/kcm_bench_support.dir/bench_support/harness.cc.o.d"
  "CMakeFiles/kcm_bench_support.dir/bench_support/paper_data.cc.o"
  "CMakeFiles/kcm_bench_support.dir/bench_support/paper_data.cc.o.d"
  "CMakeFiles/kcm_bench_support.dir/bench_support/plm_suite.cc.o"
  "CMakeFiles/kcm_bench_support.dir/bench_support/plm_suite.cc.o.d"
  "libkcm_bench_support.a"
  "libkcm_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcm_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
