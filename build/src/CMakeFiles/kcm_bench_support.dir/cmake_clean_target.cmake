file(REMOVE_RECURSE
  "libkcm_bench_support.a"
)
