# Empty compiler generated dependencies file for kcm_bench_support.
# This may be replaced when dependencies are built.
