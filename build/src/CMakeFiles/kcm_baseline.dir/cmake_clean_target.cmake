file(REMOVE_RECURSE
  "libkcm_baseline.a"
)
