# Empty dependencies file for kcm_baseline.
# This may be replaced when dependencies are built.
