file(REMOVE_RECURSE
  "CMakeFiles/kcm_baseline.dir/baseline/interp.cc.o"
  "CMakeFiles/kcm_baseline.dir/baseline/interp.cc.o.d"
  "libkcm_baseline.a"
  "libkcm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
