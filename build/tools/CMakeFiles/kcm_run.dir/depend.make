# Empty dependencies file for kcm_run.
# This may be replaced when dependencies are built.
