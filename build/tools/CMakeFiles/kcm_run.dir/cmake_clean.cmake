file(REMOVE_RECURSE
  "CMakeFiles/kcm_run.dir/kcm_run.cc.o"
  "CMakeFiles/kcm_run.dir/kcm_run.cc.o.d"
  "kcm_run"
  "kcm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
