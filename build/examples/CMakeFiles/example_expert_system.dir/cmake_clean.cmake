file(REMOVE_RECURSE
  "CMakeFiles/example_expert_system.dir/expert_system.cc.o"
  "CMakeFiles/example_expert_system.dir/expert_system.cc.o.d"
  "example_expert_system"
  "example_expert_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_expert_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
