# Empty dependencies file for example_expert_system.
# This may be replaced when dependencies are built.
