file(REMOVE_RECURSE
  "CMakeFiles/example_machine_inspect.dir/machine_inspect.cc.o"
  "CMakeFiles/example_machine_inspect.dir/machine_inspect.cc.o.d"
  "example_machine_inspect"
  "example_machine_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_machine_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
