# Empty compiler generated dependencies file for example_machine_inspect.
# This may be replaced when dependencies are built.
