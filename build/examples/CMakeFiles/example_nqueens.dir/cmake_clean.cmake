file(REMOVE_RECURSE
  "CMakeFiles/example_nqueens.dir/nqueens.cc.o"
  "CMakeFiles/example_nqueens.dir/nqueens.cc.o.d"
  "example_nqueens"
  "example_nqueens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nqueens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
