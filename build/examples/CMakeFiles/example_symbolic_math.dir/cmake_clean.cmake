file(REMOVE_RECURSE
  "CMakeFiles/example_symbolic_math.dir/symbolic_math.cc.o"
  "CMakeFiles/example_symbolic_math.dir/symbolic_math.cc.o.d"
  "example_symbolic_math"
  "example_symbolic_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_symbolic_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
