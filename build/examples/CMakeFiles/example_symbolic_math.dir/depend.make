# Empty dependencies file for example_symbolic_math.
# This may be replaced when dependencies are built.
